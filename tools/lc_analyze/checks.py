#!/usr/bin/env python3
"""Pure-Python half of tools/lc_analyze: everything downstream of the
libclang facts dict produced by extract.py. No clang import anywhere in
this file — the confinement fixed point, capture classification,
determinism rules, inline/baseline suppression, and the compile-flag
whitelist are all plain data transforms so tests/analyze_checks_test.py
can exercise them on machines without libclang.

Findings are dicts:
  {check, file, line, symbol, message}
rendered as "file:line: [check] message (in symbol)".
"""

import json
import os
import re
import shlex

CHECKS = ("affinity", "capture", "determinism")

# Sinks whose lambda runs on the owning loop's thread: being passed to one
# CONFINES the lambda for the affinity check.
LOOP_SINKS = {"EventLoop::Post", "EventLoop::RunAt", "EventLoop::Watch"}

# Modules whose outputs the README contract pins bit-identical at every
# LC_THREADS; util/rng is the one sanctioned randomness source.
DETERMINISM_ROOTS = ("src/workload", "src/core", "src/nn", "src/est")
DETERMINISM_EXEMPT = ("src/util/rng",)

SAFE_CAPTURE_TYPES = ("shared_ptr", "weak_ptr")

ALLOW_RE = re.compile(r"lc-analyze-allow\(([a-z,\s-]+)\)")


# --- shared helpers (used by extract.py too) -------------------------------

def whitelist_compile_args(entry):
    """Reduces a compile_commands entry to flags libclang understands:
    includes, defines, language standard. The build may have been
    configured for GCC; everything toolchain-specific is dropped, and the
    analysis configuration (-DLC_ANALYZE, C++ source kind) is pinned so
    the annotate attributes exist regardless of how CMake was invoked."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    directory = entry.get("directory", ".")
    out = []
    take_next = False
    std = None
    for arg in argv[1:]:  # argv[0] is the compiler
        if take_next:
            out.append(os.path.join(directory, arg)
                       if not os.path.isabs(arg) else arg)
            take_next = False
            continue
        if arg in ("-isystem", "-include", "-I"):
            out.append(arg)
            take_next = True
        elif arg.startswith("-I"):
            path = arg[2:]
            if not os.path.isabs(path):
                path = os.path.join(directory, path)
            out.append("-I" + path)
        elif arg.startswith(("-D", "-U")):
            out.append(arg)
        elif arg.startswith("-std="):
            std = arg
    return (["-xc++", std or "-std=c++20", "-DLC_ANALYZE"] + out)


def parse_capture_tokens(spellings):
    """Parses a lambda's capture list out of its token spellings (libclang
    has no capture-list API). Input: the token stream of the LAMBDA_EXPR
    extent, e.g. ['[', 'this', ',', '&', 'x', ']', '(', ...]. Returns one
    dict per capture: {name, mode, type} with mode in
    {this, star_this, ref, value, default_ref, default_copy}. `type` is
    filled in later by the extractor for value captures."""
    if not spellings or spellings[0] != "[":
        return []
    depth = 0
    items, current = [], []
    for tok in spellings:
        if tok in ("[", "(", "{"):
            depth += 1
            if depth > 1:
                current.append(tok)
        elif tok in ("]", ")", "}"):
            depth -= 1
            if depth == 0:
                items.append(current)
                break
            current.append(tok)
        elif tok == "," and depth == 1:
            items.append(current)
            current = []
        else:
            current.append(tok)

    captures = []
    for item in items:
        if not item:
            continue
        if item == ["this"]:
            captures.append({"name": "this", "mode": "this", "type": None})
        elif item[:2] == ["*", "this"]:
            captures.append(
                {"name": "*this", "mode": "star_this", "type": None})
        elif item == ["&"]:
            captures.append(
                {"name": "&", "mode": "default_ref", "type": None})
        elif item == ["="]:
            captures.append(
                {"name": "=", "mode": "default_copy", "type": None})
        elif item[0] == "&":
            name = item[1] if len(item) > 1 else ""
            captures.append({"name": name, "mode": "ref", "type": None})
        else:
            # Plain copy or init-capture `name = expr` / pack `name...`.
            name = item[0]
            captures.append({"name": name, "mode": "value", "type": None})
    return captures


def is_pointer_keyed_container(type_spelling):
    """True for associative containers keyed (or, for sets, valued) on a
    raw pointer: iteration order then depends on addresses, which vary
    run to run under ASLR."""
    match = re.search(r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<",
                      type_spelling)
    if not match:
        return False
    key = type_spelling[match.end():].split(",", 1)[0]
    return "*" in key.replace("* const", "*").strip()


# --- facts merging ----------------------------------------------------------

def merge_facts(facts_list):
    """Merges per-TU facts: functions union by id (annotations, calls and
    accesses accumulate — a header method appears in many TUs), sites and
    determinism observations dedupe by location."""
    functions = {}
    async_sites = {}
    determinism = {}
    for facts in facts_list:
        for fid, entry in facts.get("functions", {}).items():
            merged = functions.get(fid)
            if merged is None:
                merged = {k: (list(v) if isinstance(v, list) else v)
                          for k, v in entry.items()}
                merged["affine_accesses"] = [
                    dict(a) for a in entry.get("affine_accesses", [])]
                functions[fid] = merged
                continue
            for ann in entry.get("annotations", []):
                if ann not in merged["annotations"]:
                    merged["annotations"].append(ann)
            for callee in entry.get("calls", []):
                if callee not in merged["calls"]:
                    merged["calls"].append(callee)
            merged["asserts_loop"] |= entry.get("asserts_loop", False)
            if entry.get("sink") and not merged.get("sink"):
                merged["sink"] = entry["sink"]
            seen = {(a["file"], a["line"], a["member"])
                    for a in merged["affine_accesses"]}
            for access in entry.get("affine_accesses", []):
                key = (access["file"], access["line"], access["member"])
                if key not in seen:
                    merged["affine_accesses"].append(dict(access))
                    seen.add(key)
        for site in facts.get("async_sites", []):
            async_sites.setdefault((site["file"], site["line"]), site)
        for obs in facts.get("determinism", []):
            determinism.setdefault(
                (obs["file"], obs["line"], obs["kind"], obs["detail"]), obs)
    return {
        "functions": functions,
        "async_sites": [async_sites[k] for k in sorted(async_sites)],
        "determinism": [determinism[k] for k in sorted(determinism)],
    }


# --- check: affinity --------------------------------------------------------

def compute_confined(functions):
    """Fixed-point loop-confinement proof. A function is confined when:
      - annotated LC_ON_LOOP, or
      - it calls AssertOnLoopThread() itself, or
      - it is a constructor/destructor (single-threaded by construction,
        mirroring the TSA exemption), or
      - it is a lambda handed to EventLoop::Watch/Post/RunAt, or
      - it has at least one known caller and EVERY known caller is
        confined (for non-sink lambdas: the lexically enclosing function
        stands in as the caller — they run synchronously unless a sink
        says otherwise, and a lambda handed to std::thread is explicitly
        unconfined).
    Returns the set of confined function ids."""
    confined = set()
    for fid, fn in functions.items():
        if ("lc_on_loop" in fn.get("annotations", [])
                or fn.get("asserts_loop")
                or fn.get("kind") in ("constructor", "destructor")
                or fn.get("sink") in LOOP_SINKS):
            confined.add(fid)

    callers = {}
    for fid, fn in functions.items():
        for callee in fn.get("calls", []):
            callers.setdefault(callee, set()).add(fid)
    for fid, fn in functions.items():
        if fn.get("kind") == "lambda" and fn.get("sink") is None \
                and fn.get("parent"):
            callers.setdefault(fid, set()).add(fn["parent"])

    changed = True
    while changed:
        changed = False
        for fid, fn in functions.items():
            if fid in confined:
                continue
            if fn.get("kind") == "lambda" and fn.get("sink") == "thread":
                continue
            froms = callers.get(fid, set())
            if froms and all(c in confined for c in froms):
                confined.add(fid)
                changed = True
    return confined


def check_affinity(merged):
    findings = []
    confined = compute_confined(merged["functions"])
    for fid, fn in merged["functions"].items():
        if fid in confined:
            continue
        for access in fn.get("affine_accesses", []):
            findings.append({
                "check": "affinity",
                "file": access["file"], "line": access["line"],
                "symbol": fn["name"],
                "message": "loop-affine member '%s::%s' touched outside a "
                           "loop-confined function (no LC_ON_LOOP, no "
                           "AssertOnLoopThread, not reached only from "
                           "confined callers)"
                           % (access["class"], access["member"]),
            })
    return findings


# --- check: capture ---------------------------------------------------------

def _capture_problem(capture):
    mode = capture["mode"]
    name = capture.get("name") or "?"
    if mode == "this":
        return "captures raw 'this'"
    if mode == "ref":
        return "captures '%s' by reference" % name
    if mode == "default_ref":
        return "default by-reference capture [&]"
    if mode == "default_copy":
        return "default copy capture [=] (may capture raw 'this')"
    if mode == "value":
        type_spelling = capture.get("type") or ""
        if any(s in type_spelling for s in SAFE_CAPTURE_TYPES):
            return None
        if "*" in type_spelling:
            return "captures raw pointer '%s' (%s)" % (name, type_spelling)
    return None


def check_capture(merged):
    findings = []
    for site in merged["async_sites"]:
        if site.get("capture_safe") is not None:
            continue
        problems = [p for p in map(_capture_problem, site["captures"]) if p]
        for problem in problems:
            findings.append({
                "check": "capture",
                "file": site["file"], "line": site["line"],
                "symbol": site["enclosing"],
                "message": "lambda passed to %s %s; capture a shared_ptr/"
                           "weak_ptr or wrap the site in "
                           "LC_CAPTURE_SAFE(\"why\", ...)"
                           % (site["sink"], problem),
            })
    return findings


# --- check: determinism -----------------------------------------------------

_DETERMINISM_MESSAGES = {
    "banned_call": "call to %s() is a nondeterminism source; route "
                   "randomness/time through util/rng",
    "rng_engine": "RNG engine declared outside util/rng (%s); seed and "
                  "stream discipline live in lc::Rng only",
    "unordered_iter": "iteration over %s: hash order may escape into "
                      "output; copy into a sorted container first",
    "unordered_escape": "%s() on an unordered container escapes hash "
                        "order; sort before it feeds any output",
    "pointer_key": "container keyed on a pointer (%s): iteration order "
                   "follows addresses, which change run to run",
}


def determinism_in_scope(path, roots=DETERMINISM_ROOTS,
                         exempt=DETERMINISM_EXEMPT):
    path = path.replace(os.sep, "/")
    if any(path.startswith(e.rstrip("/") + "/") or path == e
           for e in exempt):
        return False
    return any(path.startswith(r.rstrip("/") + "/") or r in (".", "")
               for r in roots)


def check_determinism(merged, roots=DETERMINISM_ROOTS,
                      exempt=DETERMINISM_EXEMPT):
    findings = []
    for obs in merged["determinism"]:
        if not determinism_in_scope(obs["file"], roots, exempt):
            continue
        findings.append({
            "check": "determinism",
            "file": obs["file"], "line": obs["line"],
            "symbol": obs["enclosing"],
            "message": _DETERMINISM_MESSAGES[obs["kind"]] % obs["detail"],
        })
    return findings


# --- suppression ------------------------------------------------------------

def find_allow_ranges(text):
    """Scans one source file for `// lc-analyze-allow(check[, check]): why`
    markers. A marker sharing a line with code covers that line; a marker
    on its own (comment-only) line covers the statement that begins at the
    next non-comment line, through the first line ending in ';', '{' or
    '}' — so one marker above a wrapped call covers every line of it.
    Returns [(set_of_checks, first_line, last_line)] (1-indexed)."""
    lines = text.splitlines()
    ranges = []
    for idx, line in enumerate(lines):
        match = ALLOW_RE.search(line)
        if not match:
            continue
        names = {n.strip() for n in match.group(1).split(",") if n.strip()}
        before = line[:line.index("//")] if "//" in line else line
        if before.strip():
            ranges.append((names, idx + 1, idx + 1))
            continue
        start = None
        for j in range(idx + 1, len(lines)):
            stripped = lines[j].strip()
            if not stripped or stripped.startswith("//"):
                continue
            if start is None:
                start = j + 1
            if stripped.endswith((";", "{", "}")):
                ranges.append((names, start, j + 1))
                break
        else:
            if start is not None:
                ranges.append((names, start, len(lines)))
    return ranges


def load_baseline(path):
    if not path or not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    entries = data.get("suppressions", [])
    for entry in entries:
        if not entry.get("reason"):
            raise ValueError(
                "baseline entry without a reason: %r" % (entry,))
    return entries


def baseline_matches(entry, finding):
    if entry.get("check") and entry["check"] != finding["check"]:
        return False
    if entry.get("file") and entry["file"] != finding["file"]:
        return False
    if entry.get("symbol") and entry["symbol"] not in finding["symbol"]:
        return False
    if entry.get("contains") and \
            entry["contains"] not in finding["message"]:
        return False
    return True


def apply_suppressions(findings, root, baseline_entries):
    """Drops findings covered by an inline lc-analyze-allow marker or a
    baseline entry. Returns (kept, suppressed_count)."""
    allow_cache = {}
    kept = []
    suppressed = 0
    for finding in findings:
        path = os.path.join(root, finding["file"])
        if finding["file"] not in allow_cache:
            try:
                with open(path, encoding="utf-8") as f:
                    allow_cache[finding["file"]] = find_allow_ranges(
                        f.read())
            except OSError:
                allow_cache[finding["file"]] = []
        inline = any(
            finding["check"] in names and first <= finding["line"] <= last
            for names, first, last in allow_cache[finding["file"]])
        in_baseline = any(baseline_matches(e, finding)
                          for e in baseline_entries)
        if inline or in_baseline:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


# --- driver-facing entry point ----------------------------------------------

def run_checks(facts_list, enabled=CHECKS, determinism_roots=None):
    merged = merge_facts(facts_list)
    findings = []
    if "affinity" in enabled:
        findings += check_affinity(merged)
    if "capture" in enabled:
        findings += check_capture(merged)
    if "determinism" in enabled:
        roots = determinism_roots or DETERMINISM_ROOTS
        exempt = DETERMINISM_EXEMPT if roots is DETERMINISM_ROOTS \
            else tuple(e for e in DETERMINISM_EXEMPT)
        findings += check_determinism(merged, roots, exempt)
    findings.sort(key=lambda f: (f["file"], f["line"], f["check"],
                                 f["message"]))
    return findings


def render(finding):
    return "%s:%d: [%s] %s (in %s)" % (
        finding["file"], finding["line"], finding["check"],
        finding["message"], finding["symbol"])
