#!/usr/bin/env python3
"""Driver for the lc_analyze AST checks (affinity / capture / determinism).

    python3 tools/lc_analyze/run.py --build-dir build [--paths src]
        [--checks affinity,capture,determinism] [--advisory]
        [--require-libclang] [--stats]

Reads compile_commands.json from --build-dir (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON; the root CMakeLists turns it on by
default), parses every .cc under --paths with libclang and -DLC_ANALYZE,
and fails (exit 1) on any finding not covered by an inline
`// lc-analyze-allow(check): why` marker or tools/lc_analyze/baseline.json.

Exit codes: 0 clean, 1 findings, 77 libclang unavailable (the CTest
SKIP_RETURN_CODE convention; --require-libclang turns that into a hard
error for CI, where a silent skip would be a hole).

Per-TU cache: each TU's extracted facts are stored under
<build>/lc_analyze_cache keyed by the compile flags, keeping a content
hash of every in-repo file the TU read. A re-run after no edits touches
no compiler at all — cache hits don't even need libclang — which is what
makes the CI double-run near-instant.
"""

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.setrecursionlimit(100000)

import checks  # noqa: E402

EXIT_FINDINGS = 1
EXIT_SKIP = 77


def sha256_file(path):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()


def cache_key(entry, root, version):
    args = checks.whitelist_compile_args(entry)
    blob = json.dumps([version, os.path.relpath(entry["file"], root), args],
                      sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def load_cached(cache_dir, key):
    """Returns the cached facts when every recorded dependency still
    hashes the same; None on miss/invalidation."""
    path = os.path.join(cache_dir, key + ".json")
    try:
        with open(path, encoding="utf-8") as f:
            entry = json.load(f)
    except (OSError, ValueError):
        return None
    for dep, digest in entry.get("deps", {}).items():
        try:
            if sha256_file(dep) != digest:
                return None
        except OSError:
            return None
    return entry.get("facts")


def store_cached(cache_dir, key, facts, deps):
    os.makedirs(cache_dir, exist_ok=True)
    payload = {
        "deps": {dep: sha256_file(dep) for dep in deps},
        "facts": facts,
    }
    path = os.path.join(cache_dir, key + ".json")
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(payload, f)
    os.replace(tmp, path)


def select_entries(compile_commands, root, paths):
    prefixes = tuple(os.path.realpath(os.path.join(root, p)) + os.sep
                     for p in paths)
    selected, seen = [], set()
    for entry in compile_commands:
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.join(entry.get("directory", root), path)
        path = os.path.realpath(path)
        if not path.endswith((".cc", ".cpp")):
            continue
        if not path.startswith(prefixes):
            continue
        if path in seen:
            continue
        seen.add(path)
        normalized = dict(entry)
        normalized["file"] = path
        selected.append(normalized)
    return selected


def analyze_entries(entries, root, cache_dir, version, extractor):
    """Returns (facts_list, stats). `extractor` is
    callable(entry, root) -> (facts, deps, errors); injected so the cache
    logic is testable without libclang. It is only invoked on cache
    misses — a fully warm cache needs no extractor at all."""
    facts_list = []
    stats = {"tus": len(entries), "cached": 0, "parsed": 0, "errors": 0}
    for entry in entries:
        key = cache_key(entry, root, version)
        facts = load_cached(cache_dir, key)
        if facts is not None:
            stats["cached"] += 1
            facts_list.append(facts)
            continue
        facts, deps, errors = extractor(entry, root)
        stats["parsed"] += 1
        stats["errors"] += errors
        facts_list.append(facts)
        store_cached(cache_dir, key, facts, deps)
    return facts_list, stats


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--build-dir", required=True,
                        help="CMake build dir with compile_commands.json")
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: this repo)")
    parser.add_argument("--paths", default="src",
                        help="comma list of roots to analyze (default src)")
    parser.add_argument("--checks", default=",".join(checks.CHECKS),
                        help="comma list of checks to run")
    parser.add_argument("--advisory", action="store_true",
                        help="report findings but exit 0 (bench/examples)")
    parser.add_argument("--require-libclang", action="store_true",
                        help="fail (exit 2) instead of skipping (exit 77) "
                             "when libclang is unavailable")
    parser.add_argument("--baseline",
                        default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            "baseline.json"),
                        help="findings baseline/suppression file")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file (fixture tests)")
    parser.add_argument("--cache-dir", default=None,
                        help="per-TU facts cache "
                             "(default <build-dir>/lc_analyze_cache)")
    parser.add_argument("--determinism-roots", default=None,
                        help="comma list overriding the determinism "
                             "modules (fixture tests pass '.')")
    parser.add_argument("--stats", action="store_true",
                        help="print cache/parse statistics")
    args = parser.parse_args(argv)

    root = os.path.realpath(args.root)
    cache_dir = args.cache_dir or os.path.join(args.build_dir,
                                               "lc_analyze_cache")
    enabled = tuple(c.strip() for c in args.checks.split(",") if c.strip())
    for check in enabled:
        if check not in checks.CHECKS:
            parser.error("unknown check %r (have: %s)"
                         % (check, ", ".join(checks.CHECKS)))

    import extract  # deferred: merely importing is fine without libclang

    compile_commands_path = os.path.join(args.build_dir,
                                         "compile_commands.json")
    try:
        with open(compile_commands_path, encoding="utf-8") as f:
            compile_commands = json.load(f)
    except OSError:
        print("lc_analyze: %s not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" % compile_commands_path,
              file=sys.stderr)
        # Without libclang this machine could never run the analysis
        # anyway: prefer the skip so fresh checkouts' ctest stays green.
        if not extract.libclang_available() and not args.require_libclang:
            return EXIT_SKIP
        return 2

    entries = select_entries(compile_commands, root,
                             [p.strip() for p in args.paths.split(",")])
    if not entries:
        print("lc_analyze: no translation units under --paths %s"
              % args.paths, file=sys.stderr)
        return 2

    # A fully warm cache can answer without libclang; probe lazily.
    started = time.monotonic()

    def extractor(entry, entry_root):
        if not extract.libclang_available():
            raise extract.LibclangUnavailable()
        return extract.extract_tu(entry, entry_root)

    try:
        facts_list, stats = analyze_entries(
            entries, root, cache_dir, extract.FACTS_VERSION, extractor)
    except extract.LibclangUnavailable:
        if args.require_libclang:
            print("lc_analyze: libclang required but unavailable "
                  "(install clang + python3-clang)", file=sys.stderr)
            return 2
        print("lc_analyze: libclang unavailable; skipping (install clang "
              "+ python3-clang to run the AST checks)", file=sys.stderr)
        return EXIT_SKIP

    determinism_roots = None
    if args.determinism_roots is not None:
        determinism_roots = tuple(
            p.strip() for p in args.determinism_roots.split(",")
            if p.strip())
    findings = checks.run_checks(facts_list, enabled, determinism_roots)

    baseline_entries = [] if args.no_baseline else \
        checks.load_baseline(args.baseline)
    kept, suppressed = checks.apply_suppressions(
        findings, root, baseline_entries)

    for finding in kept:
        print(checks.render(finding))
    if args.stats:
        print("lc_analyze: tus=%d cached=%d parsed=%d parse_errors=%d "
              "suppressed=%d findings=%d elapsed=%.2fs"
              % (stats["tus"], stats["cached"], stats["parsed"],
                 stats["errors"], suppressed, len(kept),
                 time.monotonic() - started))
    if kept:
        print("lc_analyze: %d finding(s)%s"
              % (len(kept), " [advisory]" if args.advisory else ""),
              file=sys.stderr)
        return 0 if args.advisory else EXIT_FINDINGS
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
