#!/usr/bin/env python3
"""libclang fact extractor for tools/lc_analyze — the ONLY module that
touches clang.cindex. It parses one translation unit (with -DLC_ANALYZE so
the thread_annotations.h markers survive into the AST) and reduces it to a
plain-JSON "facts" dict that checks.py consumes:

  functions     id -> {name, file, line, kind, annotations, asserts_loop,
                       calls, parent, sink, affine_accesses}
  async_sites   lambdas handed to cross-thread sinks, with their parsed
                capture lists and any LC_CAPTURE_SAFE reason
  determinism   raw nondeterminism observations (banned calls, RNG engine
                declarations, unordered-container iteration/escape,
                pointer-keyed containers); module filtering happens later

Keeping this layer thin and declarative is deliberate: the container this
repo develops in has no libclang, so everything downstream of the facts
dict (confinement propagation, capture classification, suppression,
caching) lives in checks.py / run.py where the local test suite can reach
it. CI installs clang + python3-clang and runs this layer for real.
"""

import glob
import os

try:
    from clang import cindex
    HAVE_CINDEX = True
except ImportError:  # pragma: no cover - exercised only without libclang
    cindex = None
    HAVE_CINDEX = False

import checks

# Bump to invalidate every per-TU cache entry when extraction changes.
FACTS_VERSION = 1

LOOP_SINK_CLASSES = {"EventLoop"}
# method name -> classes it is a cross-thread sink on. `Submit` alone is
# ThreadPool's; EstimatorServer::Submit is the synchronous wrapper.
ASYNC_SINKS = {
    "Post": {"EventLoop"},
    "RunAt": {"EventLoop"},
    "Watch": {"EventLoop"},
    "SubmitAsync": {"EstimatorServer"},
    "HandleLineAsync": {"EstimatorServer"},
    "Submit": {"ThreadPool"},
}
LOOP_SINK_METHODS = {"Post", "RunAt", "Watch"}

BANNED_CALLS = {
    "rand", "srand", "random", "srandom", "drand48", "lrand48", "mrand48",
    "rand_r", "time", "gettimeofday", "clock", "getpid",
}
RNG_ENGINE_SPELLINGS = (
    "random_device", "mt19937", "minstd_rand", "default_random_engine",
    "ranlux24", "ranlux48", "knuth_b",
)
UNORDERED_SPELLINGS = ("unordered_map", "unordered_set", "unordered_multimap",
                       "unordered_multiset")
ITER_METHODS = {"begin", "end", "cbegin", "cend", "rbegin", "rend"}


class LibclangUnavailable(Exception):
    pass


_configured = False


def configure_library():
    """Locates a loadable libclang; raises LibclangUnavailable otherwise."""
    global _configured
    if not HAVE_CINDEX:
        raise LibclangUnavailable("python module clang.cindex not installed")
    if _configured:
        return
    try:
        cindex.Index.create()
        _configured = True
        return
    except cindex.LibclangError:
        pass
    candidates = sorted(
        glob.glob("/usr/lib/*/libclang-*.so*")
        + glob.glob("/usr/lib/*/libclang.so*")
        + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
        + glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*"),
        reverse=True,
    )
    for candidate in candidates:
        if "libclang-cpp" in candidate:  # C++ API, not the C index API
            continue
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(candidate)
            cindex.Index.create()
            _configured = True
            return
        except cindex.LibclangError:
            continue
    raise LibclangUnavailable("no loadable libclang shared library found")


def libclang_available():
    try:
        configure_library()
        return True
    except LibclangUnavailable:
        return False


def _rel(path, root):
    try:
        return os.path.relpath(os.path.realpath(path), root)
    except ValueError:  # pragma: no cover - different drive on windows
        return path


def _loc(cursor, root):
    f = cursor.location.file
    return (_rel(f.name, root) if f else "<none>", cursor.location.line)


def _annotations(cursor):
    out = []
    for child in cursor.get_children():
        if child.kind == cindex.CursorKind.ANNOTATE_ATTR:
            out.append(child.spelling)
    return out


class _Extractor:
    def __init__(self, root):
        self.root = root
        self.functions = {}
        self.async_sites = []
        self.determinism = []
        self._affine_field_cache = {}
        self._range_for_lines = set()
        self._lambda_sinks = {}  # (file, line, col) -> sink name

    # -- helpers ------------------------------------------------------------

    def _in_root(self, cursor):
        f = cursor.location.file
        if f is None:
            return False
        path = os.path.realpath(f.name)
        return path.startswith(self.root + os.sep)

    def _field_is_affine(self, field):
        usr = field.get_usr()
        if usr not in self._affine_field_cache:
            self._affine_field_cache[usr] = (
                "lc_loop_affine" in _annotations(field)
            )
        return self._affine_field_cache[usr]

    def _func_id(self, cursor):
        if cursor.kind == cindex.CursorKind.LAMBDA_EXPR:
            f, line = _loc(cursor, self.root)
            return "lambda@%s:%d:%d" % (f, line, cursor.location.column)
        return cursor.get_usr()

    def _func_entry(self, cursor, kind, parent_id):
        fid = self._func_id(cursor)
        entry = self.functions.get(fid)
        if entry is None:
            f, line = _loc(cursor, self.root)
            name = cursor.spelling or fid
            sem = cursor.semantic_parent
            if sem is not None and sem.spelling and kind != "lambda":
                name = "%s::%s" % (sem.spelling, name)
            entry = {
                "name": name, "file": f, "line": line, "kind": kind,
                "annotations": [], "asserts_loop": False, "calls": [],
                "parent": parent_id, "sink": None, "affine_accesses": [],
            }
            self.functions[fid] = entry
        for ann in _annotations(cursor):
            if ann not in entry["annotations"]:
                entry["annotations"].append(ann)
        return fid, entry

    # -- sinks and captures --------------------------------------------------

    def _find_lambda_arg(self, arg):
        """Depth-first search for a lambda inside one call argument,
        unwrapping implicit nodes (libclang shows the lambda-to-
        std::function conversion as a constructor CALL_EXPR, so the walk
        must cross calls) and the LC_CAPTURE_SAFE identity call.
        Returns (lambda_cursor, capture_safe_reason|None)."""
        stack = [(arg, None)]
        while stack:
            cursor, reason = stack.pop()
            if cursor.kind == cindex.CursorKind.LAMBDA_EXPR:
                return cursor, reason
            if (cursor.kind == cindex.CursorKind.CALL_EXPR
                    and cursor.spelling == "CaptureSafe"):
                reason = self._capture_safe_reason(cursor)
            for child in cursor.get_children():
                stack.append((child, reason))
        return None, None

    def _capture_safe_reason(self, call):
        for token in call.get_tokens():
            if token.kind == cindex.TokenKind.LITERAL and \
                    token.spelling.startswith('"'):
                return token.spelling.strip('"')
        return ""

    def _lambda_capture_tokens(self, lam):
        return [t.spelling for t in lam.get_tokens()]

    def _capture_value_type(self, lam, name):
        """Type spelling of a by-value capture, resolved through the first
        reference to `name` inside the lambda (libclang points captured-use
        DECL_REF_EXPRs at the original declaration)."""
        stack = list(lam.get_children())
        while stack:
            cursor = stack.pop()
            if (cursor.kind == cindex.CursorKind.DECL_REF_EXPR
                    and cursor.spelling == name
                    and cursor.referenced is not None):
                return cursor.referenced.type.spelling
            stack.extend(cursor.get_children())
        return None

    def _record_sink_call(self, call, enclosing_id):
        ref = call.referenced
        if ref is None:
            return
        method = call.spelling
        sem = ref.semantic_parent
        cls = sem.spelling if sem is not None else ""
        if call.kind == cindex.CursorKind.CALL_EXPR and cls == "thread" \
                and ref.kind == cindex.CursorKind.CONSTRUCTOR:
            sink = "thread"
        elif method in ASYNC_SINKS and cls in ASYNC_SINKS[method]:
            sink = "%s::%s" % (cls, method)
        else:
            return
        try:
            arguments = list(call.get_arguments())
        except Exception:  # pragma: no cover - defensive
            arguments = list(call.get_children())
        for arg in arguments:
            lam, reason = self._find_lambda_arg(arg)
            if lam is None:
                continue
            f, line = _loc(lam, self.root)
            key = (f, line, lam.location.column)
            self._lambda_sinks[key] = sink
            if sink == "thread":
                continue  # confinement only; std::thread is not a sink
            captures = checks.parse_capture_tokens(
                self._lambda_capture_tokens(lam))
            for capture in captures:
                if capture["mode"] == "value" and capture.get("name"):
                    capture["type"] = self._capture_value_type(
                        lam, capture["name"])
            enclosing = self.functions.get(enclosing_id, {})
            self.async_sites.append({
                "sink": sink, "file": f, "line": line,
                "captures": captures, "capture_safe": reason,
                "enclosing": enclosing.get("name", enclosing_id or "<file>"),
            })

    # -- determinism --------------------------------------------------------

    def _record_determinism(self, cursor, enclosing_id):
        kind = cursor.kind
        f, line = _loc(cursor, self.root)
        enclosing = self.functions.get(enclosing_id, {})
        enclosing_name = enclosing.get("name", "<file>")

        def emit(dkind, detail):
            self.determinism.append({
                "kind": dkind, "detail": detail, "file": f, "line": line,
                "enclosing": enclosing_name,
            })

        if kind == cindex.CursorKind.CALL_EXPR:
            ref = cursor.referenced
            name = cursor.spelling
            if (name in BANNED_CALLS and ref is not None
                    and ref.kind == cindex.CursorKind.FUNCTION_DECL):
                emit("banned_call", name)
            elif name in ITER_METHODS and ref is not None and \
                    ref.kind == cindex.CursorKind.CXX_METHOD:
                if line not in self._range_for_lines and \
                        self._call_receiver_unordered(cursor):
                    emit("unordered_escape", name)
        elif kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            for child in cursor.get_children():
                if child.kind == cindex.CursorKind.COMPOUND_STMT:
                    continue
                spelling = child.type.spelling or ""
                if any(u in spelling for u in UNORDERED_SPELLINGS):
                    self._range_for_lines.update(
                        range(cursor.extent.start.line,
                              cursor.extent.end.line + 1))
                    emit("unordered_iter", spelling)
                    break
        elif kind in (cindex.CursorKind.VAR_DECL,
                      cindex.CursorKind.FIELD_DECL):
            spelling = cursor.type.spelling or ""
            if any(e in spelling for e in RNG_ENGINE_SPELLINGS):
                emit("rng_engine", spelling)
            elif checks.is_pointer_keyed_container(spelling):
                emit("pointer_key", spelling)

    def _call_receiver_unordered(self, call, depth=3):
        stack = [(c, 0) for c in call.get_children()]
        while stack:
            cursor, d = stack.pop()
            spelling = cursor.type.spelling or ""
            if any(u in spelling for u in UNORDERED_SPELLINGS):
                return True
            if d < depth:
                stack.extend((c, d + 1) for c in cursor.get_children())
        return False

    # -- traversal ----------------------------------------------------------

    FUNCTION_KINDS = None  # set lazily; CursorKind unavailable sans cindex

    def walk(self, cursor, ctx):
        if _Extractor.FUNCTION_KINDS is None:
            _Extractor.FUNCTION_KINDS = {
                cindex.CursorKind.FUNCTION_DECL: "function",
                cindex.CursorKind.CXX_METHOD: "method",
                cindex.CursorKind.CONSTRUCTOR: "constructor",
                cindex.CursorKind.DESTRUCTOR: "destructor",
                cindex.CursorKind.FUNCTION_TEMPLATE: "function",
            }
        kind = cursor.kind
        next_ctx = ctx

        if kind in _Extractor.FUNCTION_KINDS:
            fid, _ = self._func_entry(
                cursor, _Extractor.FUNCTION_KINDS[kind], None)
            if cursor.is_definition():
                next_ctx = fid
        elif kind == cindex.CursorKind.LAMBDA_EXPR:
            fid, entry = self._func_entry(cursor, "lambda", ctx)
            key = (entry["file"], entry["line"], cursor.location.column)
            sink = self._lambda_sinks.get(key)
            if sink is not None:
                entry["sink"] = sink
            next_ctx = fid
        elif kind == cindex.CursorKind.CALL_EXPR and ctx is not None:
            ref = cursor.referenced
            if ref is not None:
                callee = ref.get_usr()
                entry = self.functions[ctx]
                if callee and callee not in entry["calls"]:
                    entry["calls"].append(callee)
                if cursor.spelling == "AssertOnLoopThread":
                    entry["asserts_loop"] = True
            self._record_sink_call(cursor, ctx)
        elif kind == cindex.CursorKind.MEMBER_REF_EXPR and ctx is not None:
            ref = cursor.referenced
            if (ref is not None
                    and ref.kind == cindex.CursorKind.FIELD_DECL
                    and self._field_is_affine(ref)):
                f, line = _loc(cursor, self.root)
                sem = ref.semantic_parent
                self.functions[ctx]["affine_accesses"].append({
                    "member": ref.spelling,
                    "class": sem.spelling if sem is not None else "",
                    "file": f, "line": line,
                })

        self._record_determinism(cursor, ctx)

        for child in cursor.get_children():
            if child.location.file is None or self._in_root(child):
                self.walk(child, next_ctx)


def compile_args(entry):
    """Whitelists the include/define/std flags from one compile_commands
    entry and pins the analysis configuration. Pure; unit-tested via
    checks.py re-export."""
    return checks.whitelist_compile_args(entry)


def extract_tu(entry, root):
    """Parses one compile_commands entry; returns (facts, deps, errors)
    where deps is the list of in-repo files (absolute) the TU read and
    errors the count of parse diagnostics at error severity or above."""
    configure_library()
    root = os.path.realpath(root)
    index = cindex.Index.create()
    path = entry["file"]
    if not os.path.isabs(path):
        path = os.path.join(entry.get("directory", root), path)
    path = os.path.realpath(path)
    tu = index.parse(path, args=compile_args(entry))

    errors = sum(1 for d in tu.diagnostics
                 if d.severity >= cindex.Diagnostic.Error)

    extractor = _Extractor(root)
    # Pass 1 over top-level cursors: sink registration happens inside the
    # same walk (calls are visited before the lambda argument's own cursor
    # because get_children yields the call before descending).
    for child in tu.cursor.get_children():
        if extractor._in_root(child):
            extractor.walk(child, None)

    deps = {path}
    for inc in tu.get_includes():
        try:
            dep = os.path.realpath(inc.include.name)
        except AttributeError:  # pragma: no cover
            continue
        if dep.startswith(root + os.sep):
            deps.add(dep)

    facts = {
        "tu": _rel(path, root),
        "functions": extractor.functions,
        "async_sites": extractor.async_sites,
        "determinism": extractor.determinism,
    }
    return facts, sorted(deps), errors
