// Quickstart: the full MSCN pipeline in one file — generate a database,
// label a training corpus with the exact executor, train the model, and
// estimate an unseen query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <iostream>

#include "core/mscn_estimator.h"
#include "core/trainer.h"
#include "imdb/imdb.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/generator.h"

int main() {
  // 1. A synthetic IMDb-like database (60k titles by default; small here so
  //    the example finishes in seconds).
  lc::ImdbConfig imdb_config;
  imdb_config.num_titles = 8000;
  imdb_config.num_companies = 600;
  imdb_config.num_persons = 5000;
  imdb_config.num_keywords = 1200;
  const lc::Database db = lc::GenerateImdb(imdb_config);
  std::cout << "database: " << db.TotalRows() << " rows across "
            << db.schema().num_tables() << " tables\n";

  // 2. Materialized samples (shared by featurization and baselines) and the
  //    exact executor that provides true cardinalities.
  const lc::SampleSet samples(&db, /*sample_size=*/128, /*seed=*/1);
  const lc::Executor executor(&db);

  // 3. A labelled training corpus from the paper's random query generator
  //    (uniform 0-2 joins, predicates drawn from the data; section 3.3).
  lc::GeneratorConfig generator_config;
  generator_config.seed = 42;
  lc::QueryGenerator generator(&db, generator_config);
  const lc::Workload corpus =
      generator.GenerateLabeled(executor, samples, 3000, "quickstart");
  std::cout << "labelled " << corpus.size() << " unique training queries\n";

  // 4. Train MSCN (bitmaps variant) with Adam on the mean q-error.
  lc::MscnConfig mscn_config;
  mscn_config.hidden_units = 48;
  mscn_config.epochs = 20;
  const lc::Featurizer featurizer(&db, mscn_config.variant,
                                  samples.sample_size());
  lc::Trainer trainer(&featurizer, mscn_config);
  const lc::TrainValSplit split =
      lc::SplitWorkload(corpus, mscn_config.validation_fraction, 7);
  lc::TrainingHistory history;
  lc::MscnModel model = trainer.Train(split.train, split.validation, &history);
  std::cout << lc::Format(
      "trained %d epochs in %s; validation mean q-error %.2f\n",
      mscn_config.epochs, lc::HumanSeconds(history.total_seconds).c_str(),
      history.epochs.back().validation_mean_qerror);

  // 5. Estimate an unseen query:
  //    SELECT COUNT(*) FROM title t, movie_companies mc
  //    WHERE t.id = mc.movie_id AND t.production_year > 2010
  //      AND mc.company_type_id = 2;
  const lc::ImdbColumns cols = lc::ResolveImdbColumns(db.schema());
  lc::Query query;
  query.tables = {cols.title, cols.movie_companies};
  query.joins = {0};
  query.predicates = {
      {cols.title, cols.title_production_year, lc::CompareOp::kGt, 2010},
      {cols.movie_companies, cols.mc_company_type_id, lc::CompareOp::kEq, 2}};
  query.Canonicalize();
  std::cout << "\nquery: " << query.ToSql(db.schema()) << "\n";

  // Inference = featurize (with fresh sample bitmaps) + one forward pass.
  const lc::LabeledQuery annotated = lc::LabelQuery(query, nullptr, samples);
  lc::MscnEstimator estimator(&featurizer, &model);
  const double estimate = estimator.Estimate(annotated);
  const int64_t truth = executor.Cardinality(query);
  std::cout << lc::Format(
      "MSCN estimate: %.0f rows   true cardinality: %lld rows   q-error: "
      "%.2f\n",
      estimate, static_cast<long long>(truth),
      lc::QError(estimate, static_cast<double>(truth)));

  // 6. The model serializes to a few hundred KiB (paper section 4.7).
  std::cout << "model footprint: " << lc::HumanBytes(model.ToBytes().size())
            << "\n";
  return 0;
}
