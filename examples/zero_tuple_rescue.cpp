// Scenario: the 0-tuple problem (paper sections 1 and 4.2).
//
// A query optimizer asks for the cardinality of queries with selective
// predicates. When the materialized sample contains no qualifying tuple,
// every purely sampling-based estimator degenerates to an educated guess —
// while MSCN still reads signal from the query's structure (which table,
// which columns, which operators, where the literals sit in their domains).
// This example harvests real 0-tuple queries from the paper's query
// generator and compares Random Sampling and MSCN on that subset, mirroring
// the paper's Table 3 as a narrative.

#include <iostream>

#include "core/mscn_estimator.h"
#include "core/trainer.h"
#include "est/random_sampling.h"
#include "imdb/imdb.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/generator.h"

int main() {
  lc::ImdbConfig imdb_config;
  imdb_config.num_titles = 20000;
  imdb_config.num_companies = 1500;
  imdb_config.num_persons = 12000;
  imdb_config.num_keywords = 2500;
  const lc::Database db = lc::GenerateImdb(imdb_config);
  const lc::SampleSet samples(&db, 128, 9);
  const lc::Executor executor(&db);

  // Train a compact MSCN on generator queries.
  lc::GeneratorConfig train_config;
  train_config.seed = 11;
  lc::QueryGenerator train_generator(&db, train_config);
  const lc::Workload corpus =
      train_generator.GenerateLabeled(executor, samples, 8000, "corpus");
  lc::MscnConfig mscn_config;
  mscn_config.hidden_units = 64;
  mscn_config.epochs = 30;
  const lc::Featurizer featurizer(&db, mscn_config.variant,
                                  samples.sample_size());
  lc::Trainer trainer(&featurizer, mscn_config);
  const lc::TrainValSplit split = lc::SplitWorkload(corpus, 0.1, 1);
  lc::MscnModel model = trainer.Train(split.train, split.validation, nullptr);
  lc::MscnEstimator mscn(&featurizer, &model);
  lc::RandomSamplingEstimator rs(&db, &samples);

  // Harvest unseen base-table queries whose sample bitmap is empty.
  lc::GeneratorConfig probe_config;
  probe_config.seed = 999;  // Different seed: none of these were trained on.
  probe_config.max_joins = 0;
  lc::QueryGenerator probe_generator(&db, probe_config);
  std::vector<lc::LabeledQuery> zero_tuple;
  int attempts = 0;
  while (zero_tuple.size() < 150 && attempts < 20000) {
    ++attempts;
    lc::Query query = probe_generator.Generate();
    if (query.predicates.empty()) continue;
    lc::LabeledQuery labeled = lc::LabelQuery(query, &executor, samples);
    if (labeled.cardinality <= 0) continue;          // Paper skips empties.
    if (labeled.sample_counts[0] != 0) continue;     // Sample sees tuples.
    zero_tuple.push_back(std::move(labeled));
  }
  std::cout << "collected " << zero_tuple.size()
            << " base-table queries with empty samples (out of " << attempts
            << " generated)\n\n";

  // Show a few concrete cases...
  for (size_t i = 0; i < std::min<size_t>(3, zero_tuple.size()); ++i) {
    const lc::LabeledQuery& labeled = zero_tuple[i];
    const double truth = static_cast<double>(labeled.cardinality);
    std::cout << labeled.query.ToSql(db.schema()) << "\n";
    std::cout << lc::Format(
        "  true: %8.0f | RandSamp: %8.0f (q=%.1f) | MSCN: %8.0f (q=%.1f)\n",
        truth, rs.Estimate(labeled), lc::QError(rs.Estimate(labeled), truth),
        mscn.Estimate(labeled), lc::QError(mscn.Estimate(labeled), truth));
  }

  // ...and the aggregate picture (the paper's Table 3).
  std::vector<double> rs_qerrors;
  std::vector<double> mscn_qerrors;
  for (const lc::LabeledQuery& labeled : zero_tuple) {
    const double truth = static_cast<double>(labeled.cardinality);
    rs_qerrors.push_back(lc::QError(rs.Estimate(labeled), truth));
    mscn_qerrors.push_back(lc::QError(mscn.Estimate(labeled), truth));
  }
  if (!rs_qerrors.empty()) {
    std::cout << lc::Format(
        "\naggregate q-errors over all %zu 0-tuple queries:\n",
        zero_tuple.size());
    std::cout << lc::Format("  %-14s median %6.2f   95th %8.2f   mean %8.2f\n",
                            "Random Samp.", lc::Quantile(rs_qerrors, 0.5),
                            lc::Quantile(rs_qerrors, 0.95),
                            lc::Mean(rs_qerrors));
    std::cout << lc::Format("  %-14s median %6.2f   95th %8.2f   mean %8.2f\n",
                            "MSCN", lc::Quantile(mscn_qerrors, 0.5),
                            lc::Quantile(mscn_qerrors, 0.95),
                            lc::Mean(mscn_qerrors));
  }
  std::cout << "\nWith zero qualifying samples, RS must guess from conjunct "
               "statistics; MSCN exploits the learned joint signal of "
               "table, columns, operators and literal positions, which "
               "keeps its tail in check (paper Table 3: MSCN mean 6.89 vs "
               "RS 147).\n";
  return 0;
}
