// Scenario: join-crossing correlations (the paper's motivating example —
// "French actors are more likely to participate in romantic movies").
//
// The synthetic dataset plants the analogous dependency: production
// companies are "active" in eras, so a predicate on the company id
// correlates with the production year of the joined title. Independence-
// based estimators multiply the two selectivities and miss the interaction;
// MSCN learns it. This example compares era-aligned predicate pairs (old
// movies x old companies) against misaligned pairs (old movies x modern
// companies) — individually the predicates have identical selectivities, so
// any estimator that assumes independence must give both pairs (almost) the
// same estimate.

#include <iostream>

#include "core/mscn_estimator.h"
#include "core/trainer.h"
#include "est/postgres.h"
#include "est/random_sampling.h"
#include "imdb/imdb.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/generator.h"

int main() {
  lc::ImdbConfig imdb_config;
  imdb_config.num_titles = 20000;
  imdb_config.num_companies = 1400;
  imdb_config.num_persons = 12000;
  imdb_config.num_keywords = 2500;
  const lc::Database db = lc::GenerateImdb(imdb_config);
  const lc::SampleSet samples(&db, 128, 21);
  const lc::Executor executor(&db);
  const lc::ImdbColumns cols = lc::ResolveImdbColumns(db.schema());

  lc::GeneratorConfig generator_config;
  generator_config.seed = 31;
  lc::QueryGenerator generator(&db, generator_config);
  const lc::Workload corpus =
      generator.GenerateLabeled(executor, samples, 8000, "corpus");
  lc::MscnConfig mscn_config;
  mscn_config.hidden_units = 64;
  mscn_config.epochs = 30;
  const lc::Featurizer featurizer(&db, mscn_config.variant,
                                  samples.sample_size());
  lc::Trainer trainer(&featurizer, mscn_config);
  const lc::TrainValSplit split = lc::SplitWorkload(corpus, 0.1, 2);
  lc::MscnModel model = trainer.Train(split.train, split.validation, nullptr);
  lc::MscnEstimator mscn(&featurizer, &model);
  lc::PostgresEstimator pg(&db);
  lc::RandomSamplingEstimator rs(&db, &samples);

  // Open-range predicate pairs (the training distribution contains exactly
  // this kind of predicate). "old" selects roughly the early eras, "new"
  // the late ones; companies are banded by era, low ids = early eras.
  const int32_t old_year = 1960;   // production_year < 1960 -> early eras.
  const int32_t new_year = 2010;   // production_year > 2010 -> last era.
  const int32_t low_company = imdb_config.num_companies / lc::kNumEras;
  const int32_t high_company =
      imdb_config.num_companies - imdb_config.num_companies / lc::kNumEras;

  struct Case {
    const char* label;
    lc::Predicate title_predicate;
    lc::Predicate company_predicate;
  };
  const Case cases[] = {
      {"old titles x old companies (aligned)",
       {cols.title, cols.title_production_year, lc::CompareOp::kLt, old_year},
       {cols.movie_companies, cols.mc_company_id, lc::CompareOp::kLt,
        low_company}},
      {"old titles x new companies (conflicting)",
       {cols.title, cols.title_production_year, lc::CompareOp::kLt, old_year},
       {cols.movie_companies, cols.mc_company_id, lc::CompareOp::kGt,
        high_company}},
      {"new titles x new companies (aligned)",
       {cols.title, cols.title_production_year, lc::CompareOp::kGt, new_year},
       {cols.movie_companies, cols.mc_company_id, lc::CompareOp::kGt,
        high_company}},
      {"new titles x old companies (conflicting)",
       {cols.title, cols.title_production_year, lc::CompareOp::kGt, new_year},
       {cols.movie_companies, cols.mc_company_id, lc::CompareOp::kLt,
        low_company}},
  };

  std::cout << "\njoin-crossing correlation probe "
               "(title JOIN movie_companies):\n\n";
  std::cout << lc::Format("%-44s %10s %12s %12s %12s\n", "case", "true",
                          "PostgreSQL", "RandSamp", "MSCN");
  for (const Case& probe : cases) {
    lc::Query query;
    query.tables = {cols.title, cols.movie_companies};
    query.joins = {0};
    query.predicates = {probe.title_predicate, probe.company_predicate};
    query.Canonicalize();
    const lc::LabeledQuery labeled =
        lc::LabelQuery(query, &executor, samples);
    const double truth = static_cast<double>(labeled.cardinality);
    std::cout << lc::Format("%-44s %10.0f %9.0f(%4.1fx) %9.0f(%4.1fx) "
                            "%9.0f(%4.1fx)\n",
                            probe.label, truth, pg.Estimate(labeled),
                            lc::QError(pg.Estimate(labeled), truth),
                            rs.Estimate(labeled),
                            lc::QError(rs.Estimate(labeled), truth),
                            mscn.Estimate(labeled),
                            lc::QError(mscn.Estimate(labeled), truth));
  }
  std::cout <<
      "\nAligned pairs return far more rows than conflicting pairs, yet "
      "independence-based estimators cannot tell them apart: they "
      "overestimate the conflicting cases and underestimate the aligned "
      "ones. MSCN's q-errors stay much closer to 1 on both.\n";
  return 0;
}
