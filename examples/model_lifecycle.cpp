// Scenario: operating MSCN like a database component — train once on an
// immutable snapshot, serialize the model to disk, load it in a fresh
// process (simulated here by a second model instance), and verify that the
// loaded estimator is bit-identical. Also demonstrates the workload
// serialization used by the artifact cache and what re-training on a
// changed database looks like (paper section 5, "Updates").

#include <iostream>

#include "core/mscn_estimator.h"
#include "core/trainer.h"
#include "imdb/imdb.h"
#include "util/file.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/generator.h"

namespace {

lc::Workload BuildCorpus(const lc::Database& db, const lc::SampleSet& samples,
                         const lc::Executor& executor, uint64_t seed,
                         size_t count) {
  lc::GeneratorConfig config;
  config.seed = seed;
  lc::QueryGenerator generator(&db, config);
  return generator.GenerateLabeled(executor, samples, count, "corpus");
}

lc::MscnModel TrainModel(const lc::Featurizer& featurizer,
                         const lc::Workload& corpus) {
  lc::MscnConfig config;
  config.hidden_units = 32;
  config.epochs = 12;
  lc::Trainer trainer(&featurizer, config);
  const lc::TrainValSplit split = lc::SplitWorkload(corpus, 0.1, 3);
  return trainer.Train(split.train, split.validation, nullptr);
}

}  // namespace

int main() {
  lc::ImdbConfig imdb_config;
  imdb_config.num_titles = 8000;
  imdb_config.num_companies = 600;
  imdb_config.num_persons = 5000;
  imdb_config.num_keywords = 1200;
  const lc::Database db = lc::GenerateImdb(imdb_config);
  const lc::SampleSet samples(&db, 128, 4);
  const lc::Executor executor(&db);

  const lc::Workload corpus = BuildCorpus(db, samples, executor, 8, 2500);

  // --- Snapshot 1: train and persist. ---
  const lc::Featurizer featurizer(&db, lc::FeatureVariant::kBitmaps,
                                  samples.sample_size());
  lc::MscnModel model = TrainModel(featurizer, corpus);
  const std::string model_path = "/tmp/lc_example_model.bin";
  const lc::Status save_status = model.SaveToFile(model_path);
  if (!save_status.ok()) {
    std::cerr << "saving failed: " << save_status << "\n";
    return 1;
  }
  std::cout << "saved model to " << model_path << " ("
            << lc::HumanBytes(lc::FileSize(model_path).value()) << ")\n";

  // --- "Another process": load and compare predictions. ---
  auto loaded = lc::MscnModel::LoadFromFile(model_path);
  if (!loaded.ok()) {
    std::cerr << "loading failed: " << loaded.status() << "\n";
    return 1;
  }
  lc::MscnEstimator original(&featurizer, &model, "original");
  lc::MscnEstimator restored(&featurizer, &*loaded, "restored");
  double max_divergence = 0.0;
  for (size_t i = 0; i < 50; ++i) {
    const lc::LabeledQuery& query = corpus.queries[i];
    max_divergence = std::max(
        max_divergence,
        lc::QError(original.Estimate(query), restored.Estimate(query)));
  }
  std::cout << lc::Format(
      "max estimate divergence original vs restored over 50 queries: %.6f "
      "(1.0 = identical)\n",
      max_divergence);

  // --- Workload serialization (what the artifact cache stores). ---
  const std::string corpus_path = "/tmp/lc_example_corpus.bin";
  if (corpus.SaveToFile(corpus_path).ok()) {
    const auto reloaded = lc::Workload::LoadFromFile(corpus_path);
    std::cout << "workload round trip: " << reloaded->size() << " queries, "
              << lc::HumanBytes(lc::FileSize(corpus_path).value())
              << " on disk\n";
  }

  // --- Data change: the paper's section 5 prescribes re-training from the
  //     new snapshot (one-hot widths and value bounds may shift). ---
  imdb_config.seed += 1;  // A "changed" database snapshot.
  const lc::Database changed_db = lc::GenerateImdb(imdb_config);
  const lc::SampleSet changed_samples(&changed_db, 128, 4);
  const lc::Executor changed_executor(&changed_db);
  const lc::Workload changed_corpus =
      BuildCorpus(changed_db, changed_samples, changed_executor, 9, 2500);
  const lc::Featurizer changed_featurizer(
      &changed_db, lc::FeatureVariant::kBitmaps,
      changed_samples.sample_size());
  lc::MscnModel retrained = TrainModel(changed_featurizer, changed_corpus);
  std::cout << "re-trained on the changed snapshot; new model footprint "
            << lc::HumanBytes(retrained.ToBytes().size()) << "\n";

  (void)lc::RemoveFile(model_path);
  (void)lc::RemoveFile(corpus_path);
  return 0;
}
