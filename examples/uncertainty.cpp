// Scenario: when should the optimizer trust the model? (paper section 5,
// "Uncertainty estimation").
//
// A deep ensemble of independently-seeded MSCN models exposes the model's
// own confidence: on queries like the training distribution the members
// agree; on out-of-distribution queries (more joins than trained on) they
// disagree, flagging the estimate as untrustworthy — so the optimizer can
// fall back to a conventional estimator.

#include <iostream>

#include "core/ensemble.h"
#include "imdb/imdb.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/generator.h"

int main() {
  lc::ImdbConfig imdb_config;
  imdb_config.num_titles = 10000;
  imdb_config.num_companies = 800;
  imdb_config.num_persons = 6000;
  imdb_config.num_keywords = 1500;
  const lc::Database db = lc::GenerateImdb(imdb_config);
  const lc::SampleSet samples(&db, 96, 3);
  const lc::Executor executor(&db);

  lc::GeneratorConfig generator_config;
  generator_config.seed = 19;  // 0-2 joins: the training envelope.
  lc::QueryGenerator generator(&db, generator_config);
  const lc::Workload corpus =
      generator.GenerateLabeled(executor, samples, 4000, "corpus");

  lc::MscnConfig config;
  config.hidden_units = 48;
  config.epochs = 16;
  const lc::Featurizer featurizer(&db, config.variant, samples.sample_size());
  const lc::TrainValSplit split = lc::SplitWorkload(corpus, 0.1, 4);
  std::cout << "training a 3-member MSCN ensemble...\n";
  lc::MscnEnsemble ensemble(&featurizer, config, 3, split.train,
                            split.validation);

  const auto report = [&](const char* label, const lc::Workload& workload,
                          size_t limit) {
    double mean_spread = 0.0;
    size_t confident = 0;
    const size_t n = std::min(limit, workload.size());
    for (size_t i = 0; i < n; ++i) {
      const lc::UncertainEstimate estimate =
          ensemble.EstimateWithUncertainty(workload.queries[i]);
      mean_spread += estimate.log_spread;
      confident += ensemble.IsConfident(workload.queries[i], 4.0);
    }
    std::cout << lc::Format(
        "%-34s mean log-spread %.3f   confident (members within 4x): "
        "%zu/%zu\n",
        label, mean_spread / static_cast<double>(n), confident, n);
  };

  // In-distribution: unseen queries from the training envelope.
  lc::GeneratorConfig in_config;
  in_config.seed = 555;
  lc::QueryGenerator in_generator(&db, in_config);
  const lc::Workload in_distribution =
      in_generator.GenerateLabeled(executor, samples, 150, "in-dist");

  // Out-of-distribution: 4-join queries.
  lc::GeneratorConfig out_config;
  out_config.seed = 777;
  out_config.min_joins = 4;
  out_config.max_joins = 4;
  lc::QueryGenerator out_generator(&db, out_config);
  const lc::Workload out_of_distribution =
      out_generator.GenerateLabeled(executor, samples, 150, "out-dist");

  std::cout << "\n";
  report("unseen 0-2 join queries (in-dist)", in_distribution, 150);
  report("4-join queries (out-of-dist)", out_of_distribution, 150);

  // Show the two regimes on concrete queries.
  std::cout << "\nexample estimates (true vs ensemble, with member "
               "range):\n";
  for (const lc::Workload* workload :
       {&in_distribution, &out_of_distribution}) {
    const lc::LabeledQuery& labeled = workload->queries[0];
    const lc::UncertainEstimate estimate =
        ensemble.EstimateWithUncertainty(labeled);
    std::cout << "  " << labeled.query.ToSql(db.schema()) << "\n";
    std::cout << lc::Format(
        "    true %lld | ensemble %.0f | members [%.0f, %.0f] | q-error "
        "%.2f\n",
        static_cast<long long>(labeled.cardinality), estimate.cardinality,
        estimate.min_estimate, estimate.max_estimate,
        lc::QError(estimate.cardinality,
                   static_cast<double>(labeled.cardinality)));
  }

  std::cout << "\nA production integration would use IsConfident() as the "
               "gate: trust MSCN when the members agree, fall back to "
               "classical statistics when they do not (paper section 5).\n"
               "Caveat (visible above at small scale): disagreement is a "
               "*necessary* trust signal, not a sufficient one — members "
               "can agree on a wrong, saturated estimate when the true "
               "cardinality exceeds the trained range, so range checks "
               "(paper section 4.4) belong in the gate too.\n";
  return 0;
}
