// Microbenchmarks of the database substrate: predicate scans, exact join
// cardinality computation (the HyPer stand-in that labels training data),
// sample bitmap evaluation and IBJS probing.

#include <benchmark/benchmark.h>

#include "est/ibjs.h"
#include "exec/executor.h"
#include "imdb/imdb.h"
#include "sample/sample.h"
#include "workload/generator.h"

namespace lc {
namespace {

struct ExecFixture {
  Database db;
  Executor executor;
  SampleSet samples;
  ImdbColumns cols;

  static ImdbConfig Config() {
    ImdbConfig config;
    config.seed = 88;
    config.num_titles = 20000;
    config.num_companies = 1200;
    config.num_persons = 14000;
    config.num_keywords = 2600;
    return config;
  }

  ExecFixture()
      : db(GenerateImdb(Config())),
        executor(&db),
        samples(&db, 128, 3),
        cols(ResolveImdbColumns(db.schema())) {}

  static ExecFixture& Get() {
    static ExecFixture* fixture = new ExecFixture();
    return *fixture;
  }

  Query StarQuery(int joins) const {
    Query query;
    query.tables = {cols.title};
    for (int j = 0; j < joins; ++j) {
      query.joins.push_back(j);
      query.tables.push_back(db.schema().join_edge(j).Other(cols.title));
    }
    query.predicates = {
        {cols.title, cols.title_production_year, CompareOp::kGt, 2000}};
    query.Canonicalize();
    return query;
  }
};

void BM_ExactCardinality(benchmark::State& state) {
  ExecFixture& fixture = ExecFixture::Get();
  const Query query = fixture.StarQuery(static_cast<int>(state.range(0)));
  int64_t cardinality = 0;
  for (auto _ : state) {
    cardinality = fixture.executor.Cardinality(query);
    benchmark::DoNotOptimize(cardinality);
  }
  state.counters["cardinality"] = static_cast<double>(cardinality);
}
BENCHMARK(BM_ExactCardinality)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_PredicateScan(benchmark::State& state) {
  ExecFixture& fixture = ExecFixture::Get();
  const std::vector<Predicate> predicates = {
      {fixture.cols.cast_info, fixture.cols.ci_role_id, CompareOp::kEq, 1},
      {fixture.cols.cast_info, fixture.cols.ci_person_id, CompareOp::kGt,
       100}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.executor.CountSelected(fixture.cols.cast_info, predicates));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(fixture.db.table(fixture.cols.cast_info)
                               .num_rows()));
}
BENCHMARK(BM_PredicateScan);

void BM_SampleBitmap(benchmark::State& state) {
  ExecFixture& fixture = ExecFixture::Get();
  const std::vector<Predicate> predicates = {
      {fixture.cols.title, fixture.cols.title_production_year, CompareOp::kGt,
       2000},
      {fixture.cols.title, fixture.cols.title_kind_id, CompareOp::kEq, 1}};
  const TableSample& sample = fixture.samples.sample(fixture.cols.title);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample.QualifyingBitmap(predicates).Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(sample.size()));
}
BENCHMARK(BM_SampleBitmap);

void BM_IbjsEstimate(benchmark::State& state) {
  ExecFixture& fixture = ExecFixture::Get();
  IbjsEstimator ibjs(&fixture.db, &fixture.samples);
  const Query query = fixture.StarQuery(static_cast<int>(state.range(0)));
  const LabeledQuery labeled =
      LabelQuery(query, nullptr, fixture.samples);
  // Warm the lazily-built indexes outside the timed region.
  ibjs.Estimate(labeled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibjs.Estimate(labeled));
  }
}
BENCHMARK(BM_IbjsEstimate)->Arg(1)->Arg(2)->Arg(4);

void BM_GenerateQuery(benchmark::State& state) {
  ExecFixture& fixture = ExecFixture::Get();
  GeneratorConfig config;
  config.seed = 9;
  QueryGenerator generator(&fixture.db, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate().tables.size());
  }
}
BENCHMARK(BM_GenerateQuery);

}  // namespace
}  // namespace lc

BENCHMARK_MAIN();
