// Extension ablation (paper section 5, "More bitmaps"): the standard MSCN
// (one conjunction bitmap per table) vs the extended variant that adds one
// positional bitmap per predicate. The paper predicts the extra bitmaps
// help most on conjunctive base-table predicates — including 0-tuple
// situations where individual conjuncts still qualify tuples.

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "util/str.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Extension: per-predicate bitmaps (section 5, 'More "
               "bitmaps') ===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  lc::MscnEstimator& standard =
      experiment.Mscn(lc::FeatureVariant::kBitmaps);
  lc::MscnEstimator& extended =
      experiment.Mscn(lc::FeatureVariant::kPredicateBitmaps);

  const std::vector<double> standard_estimates =
      lc::EstimateWorkload(&standard, synthetic);
  const std::vector<double> extended_estimates =
      lc::EstimateWorkload(&extended, synthetic);

  lc::PrintErrorTable(
      std::cout, "q-errors on the synthetic workload",
      {{"MSCN (bitmaps)",
        lc::Summarize(lc::QErrors(standard_estimates, synthetic))},
       {"MSCN (pred bitmaps)",
        lc::Summarize(lc::QErrors(extended_estimates, synthetic))}});

  // Subset: queries with conjunctive predicates (>= 2 predicates on some
  // table) — where the extension's extra signal lives.
  std::vector<size_t> conjunctive;
  for (size_t i = 0; i < synthetic.size(); ++i) {
    const lc::Query& query = synthetic.queries[i].query;
    for (lc::TableId table : query.tables) {
      if (query.PredicatesFor(table).size() >= 2) {
        conjunctive.push_back(i);
        break;
      }
    }
  }
  std::cout << lc::Format("\n%zu queries have conjunctive (>=2) predicates "
                          "on some table:\n",
                          conjunctive.size());
  lc::PrintErrorTable(
      std::cout, "",
      {{"MSCN (bitmaps)",
        lc::Summarize(lc::QErrors(standard_estimates, synthetic,
                                  conjunctive))},
       {"MSCN (pred bitmaps)",
        lc::Summarize(lc::QErrors(extended_estimates, synthetic,
                                  conjunctive))}});

  // Subset: 0-tuple conjunctions whose individual conjuncts still qualify
  // samples — precisely the situation the paper says this extension fixes.
  std::vector<size_t> rescue;
  for (size_t i = 0; i < synthetic.size(); ++i) {
    const lc::LabeledQuery& labeled = synthetic.queries[i];
    bool empty_conjunction = false;
    for (int64_t count : labeled.sample_counts) {
      empty_conjunction |= (count == 0);
    }
    if (!empty_conjunction) continue;
    bool live_conjunct = false;
    for (const lc::BitVector& bitmap : labeled.predicate_bitmaps) {
      live_conjunct |= !bitmap.None();
    }
    if (live_conjunct) rescue.push_back(i);
  }
  if (!rescue.empty()) {
    std::cout << lc::Format("\n%zu queries have an empty conjunction bitmap "
                            "but live per-predicate bitmaps:\n",
                            rescue.size());
    lc::PrintErrorTable(
        std::cout, "",
        {{"MSCN (bitmaps)",
          lc::Summarize(lc::QErrors(standard_estimates, synthetic, rescue))},
         {"MSCN (pred bitmaps)",
          lc::Summarize(
              lc::QErrors(extended_estimates, synthetic, rescue))}});
  }

  std::cout << "\npaper (section 5): 'for a query with two conjunctive base "
               "table predicates, we would have one bitmap for each "
               "predicate, and another bitmap representing the "
               "conjunction... We expect that it would benefit from the "
               "patterns in these additional bitmaps.'\n";
  return 0;
}
