// Closed-loop load generator for the serving front-end: C client threads
// submit query text to a live EstimatorServer and measure per-request
// latency (p50/p95/p99) and throughput, with the estimator result cache on
// vs. off. The request stream draws from a fixed set of distinct queries,
// so the cache-on run converges to the warm-hit fast path the way real
// optimizer traffic (repeating templates) does.
//
// Also the end-to-end determinism gate for the serving path: every distinct
// query's server estimate is LC_CHECKed bit-identical to a direct
// MscnEstimator::EstimateAll over the same queries (see
// docs/ARCHITECTURE.md, "Serving"). Recorded in BENCH_pr4_serve.json.
//
// Retrain-during-load mode (PR 5): repeats the cache-off load while a
// model retrain runs mid-flight, once with the legacy in-place protocol
// (ContinueTraining under AcquireModelWriteLock — every cache miss stalls
// behind the writer) and once with copy-train-swap (Trainer::TrainClone in
// the background + MscnEstimator::SwapModel via the server's ADMIN RETRAIN
// verb — no request ever blocks on training). Requests are bucketed into
// steady-state vs during-retrain and the p99 gap between the buckets is
// the headline number of BENCH_pr5_swap.json. A separate cache-on pass
// checks lazy stale-entry retirement and the post-swap bit-match gate.
//
// Socket-transport mode (PR 6): `serve_load --transport=socket` drives the
// same workload through the real network stack (serve/net: unix-domain
// socket, epoll event loop, line framing) instead of in-process Submit.
// Hundreds of concurrent connections (LC_SERVE_LOAD_CONNS, default 256)
// each keep a pipelined window of requests on the wire
// (LC_SERVE_LOAD_PIPELINE, default 8), and EVERY response is gated
// bit-identical to a direct EstimateAll — the transport cannot change the
// bits. Recorded in BENCH_pr6_socket.json.
//
// Multi-loop sweep (PR 8): LC_SERVE_LOAD_LOOPS is a comma list of shard
// counts ("1,2,4"); socket mode reruns the whole load at each count with
// the transport sharded across that many event-loop threads, keeping the
// bit-match gate, and reports the per-loop connection division. Recorded
// in BENCH_pr8_loops.json.
//
// Quantized mode (PR 7): `serve_load --quant` publishes an int8 snapshot
// on the load estimators (ConfigureQuantization over the distinct query
// set, q-error gate enforced) and measures fp32 vs int8 serving
// throughput on the cache-miss path. The bit-match gate relaxes to the
// q-error bound the publication gate admitted — int8 responses cannot be
// bit-identical to fp32, but every one must stay inside the bound. Works
// with both transports; the retrain modes are fp32-only and are skipped.
// Recorded in BENCH_pr7_simd_quant.json.
//
// Knobs: LC_SERVE_LOAD_REQUESTS (default 20000), LC_SERVE_LOAD_CLIENTS (8),
// LC_SERVE_LOAD_DISTINCT (512), LC_SERVE_LOAD_RETRAIN (1 = run the retrain
// modes), LC_SERVE_LOAD_CONNS (256), LC_SERVE_LOAD_PIPELINE (8) and
// LC_SERVE_LOAD_LOOPS ("1") for --transport=socket,
// LC_SERVE_LOAD_RETRAIN_QUERIES (2000),
// LC_SERVE_LOAD_RETRAIN_EPOCHS (2), plus the server's own LC_SERVE_* set.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/quantized_model.h"
#include "core/trainer.h"

#include "eval/experiment.h"
#include "eval/report.h"
#include "serve/net/socket_server.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/str.h"
#include "util/timer.h"

namespace {

// The pairwise q-error ratio between a served estimate and the fp32 ground
// truth — the relaxed gate the quantized mode asserts instead of equality.
double QError(double a, double b) {
  const double lo = std::max(1e-9, std::min(a, b));
  return std::max(a, b) / lo;
}

struct LoadResult {
  double seconds = 0.0;
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  lc::serve::Stats stats;
  lc::CacheCounters cache;
};

LoadResult RunLoad(lc::MscnEstimator* estimator, const lc::Schema& schema,
                   const lc::SampleSet& samples,
                   const std::vector<std::string>& texts,
                   size_t total_requests, int clients) {
  lc::serve::EstimatorServer server(estimator, &schema, &samples);
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));

  lc::WallTimer wall;
  std::vector<std::thread> threads;
  for (int client = 0; client < clients; ++client) {
    threads.emplace_back([&, client] {
      std::vector<double>& mine = latencies[static_cast<size_t>(client)];
      const size_t begin = total_requests * static_cast<size_t>(client) /
                           static_cast<size_t>(clients);
      const size_t end = total_requests * static_cast<size_t>(client + 1) /
                         static_cast<size_t>(clients);
      mine.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        // Deterministic per-request pick, uncorrelated across clients.
        const size_t pick =
            (i * 2654435761ULL + static_cast<size_t>(client) * 97ULL) %
            texts.size();
        lc::WallTimer timer;
        const lc::serve::Response response = server.Submit(texts[pick]);
        mine.push_back(timer.Seconds() * 1e6);
        LC_CHECK(response.status.ok())
            << "request rejected under load: " << response.status;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadResult result;
  result.seconds = wall.Seconds();
  result.stats = server.GetStats();
  result.cache = estimator->cache_counters();
  server.Shutdown();

  std::vector<double> all;
  all.reserve(total_requests);
  for (const std::vector<double>& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  result.throughput_qps = static_cast<double>(all.size()) / result.seconds;
  result.p50_us = lc::Quantile(all, 0.50);
  result.p95_us = lc::Quantile(all, 0.95);
  result.p99_us = lc::Quantile(all, 0.99);
  result.mean_us = lc::Mean(all);
  return result;
}

// One retrain-during-load run: closed-loop clients submit continuously
// while a controller thread retrains the model mid-run; each request is
// bucketed by whether the retrain was in flight when it ran. Requests that
// overlap the retrain window at either end are counted as "during" — the
// conservative choice for the stall we are trying to expose.
struct RetrainLoadResult {
  double steady_p50_us = 0.0;
  double steady_p99_us = 0.0;
  double during_p50_us = 0.0;
  double during_p99_us = 0.0;
  double during_max_us = 0.0;
  size_t steady_count = 0;
  size_t during_count = 0;
  size_t shed = 0;  // Unavailable rejections (overload shedding).
  double retrain_seconds = 0.0;
  lc::serve::Stats stats;
};

RetrainLoadResult RunRetrainLoad(
    lc::MscnEstimator* estimator, const lc::Schema& schema,
    const lc::SampleSet& samples, const std::vector<std::string>& texts,
    int clients,
    const std::function<void(lc::serve::EstimatorServer&)>& retrain) {
  lc::serve::EstimatorServer server(estimator, &schema, &samples);

  std::atomic<bool> retraining{false};
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> steady(static_cast<size_t>(clients));
  std::vector<std::vector<double>> during(static_cast<size_t>(clients));
  std::atomic<size_t> shed{0};

  std::vector<std::thread> threads;
  for (int client = 0; client < clients; ++client) {
    threads.emplace_back([&, client] {
      size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        const size_t pick =
            (i++ * 2654435761ULL + static_cast<size_t>(client) * 97ULL) %
            texts.size();
        const bool before = retraining.load(std::memory_order_acquire);
        lc::WallTimer timer;
        const lc::serve::Response response = server.Submit(texts[pick]);
        const double us = timer.Seconds() * 1e6;
        const bool after = retraining.load(std::memory_order_acquire);
        if (!response.status.ok()) {
          // In-place retrains can wedge the lanes long enough for the
          // admission queue to fill; shedding is part of the stall story.
          shed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        auto& bucket = (before || after)
                           ? during[static_cast<size_t>(client)]
                           : steady[static_cast<size_t>(client)];
        bucket.push_back(us);
      }
    });
  }

  // Controller: sample steady state, retrain, sample a tail, stop.
  RetrainLoadResult result;
  {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    lc::WallTimer retrain_timer;
    retraining.store(true, std::memory_order_release);
    retrain(server);
    retraining.store(false, std::memory_order_release);
    result.retrain_seconds = retrain_timer.Seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    done.store(true, std::memory_order_release);
  }
  for (std::thread& thread : threads) thread.join();
  result.stats = server.GetStats();
  server.Shutdown();

  std::vector<double> steady_all;
  std::vector<double> during_all;
  for (int client = 0; client < clients; ++client) {
    const auto& s = steady[static_cast<size_t>(client)];
    const auto& d = during[static_cast<size_t>(client)];
    steady_all.insert(steady_all.end(), s.begin(), s.end());
    during_all.insert(during_all.end(), d.begin(), d.end());
  }
  result.steady_count = steady_all.size();
  result.during_count = during_all.size();
  result.shed = shed.load();
  if (!steady_all.empty()) {
    result.steady_p50_us = lc::Quantile(steady_all, 0.50);
    result.steady_p99_us = lc::Quantile(steady_all, 0.99);
  }
  if (!during_all.empty()) {
    result.during_p50_us = lc::Quantile(during_all, 0.50);
    result.during_p99_us = lc::Quantile(during_all, 0.99);
    result.during_max_us =
        *std::max_element(during_all.begin(), during_all.end());
  }
  return result;
}

void PrintRetrainRow(const char* name, const RetrainLoadResult& result) {
  std::cout << lc::Format(
      "%-10s steady p50=%9.1fus p99=%9.1fus | during p50=%9.1fus "
      "p99=%9.1fus max=%10.1fus | gap(p99)=%6.1fx shed=%zu "
      "retrain=%.2fs\n",
      name, result.steady_p50_us, result.steady_p99_us, result.during_p50_us,
      result.during_p99_us, result.during_max_us,
      result.steady_p99_us > 0.0 ? result.during_p99_us / result.steady_p99_us
                                 : 0.0,
      result.shed, result.retrain_seconds);
}

void PrintRetrainJson(std::ostream& os, const char* name,
                      const RetrainLoadResult& result) {
  os << lc::Format(
      "    \"%s\": { \"steady_p50_us\": %.1f, \"steady_p99_us\": %.1f, "
      "\"during_p50_us\": %.1f, \"during_p99_us\": %.1f, "
      "\"during_max_us\": %.1f, \"p99_gap\": %.2f, \"steady_count\": %zu, "
      "\"during_count\": %zu, \"shed\": %zu, \"retrain_seconds\": %.2f, "
      "\"swaps\": %llu, \"retrains_started\": %llu }",
      name, result.steady_p50_us, result.steady_p99_us, result.during_p50_us,
      result.during_p99_us, result.during_max_us,
      result.steady_p99_us > 0.0 ? result.during_p99_us / result.steady_p99_us
                                 : 0.0,
      result.steady_count, result.during_count, result.shed,
      result.retrain_seconds,
      static_cast<unsigned long long>(result.stats.model_swaps),
      static_cast<unsigned long long>(result.stats.retrains_started));
}

// ---- Socket transport mode -----------------------------------------------

// One pipelined client connection: a blocking fd plus a buffered line
// reader and the in-flight bookkeeping (which query each outstanding
// request picked, and when its burst hit the wire).
struct PipelinedConn {
  int fd = -1;
  std::string buffer;
  std::vector<size_t> picks;   // Query index per in-flight request, FIFO.
  lc::WallTimer burst_timer;   // Started when the burst was written.
  size_t sent = 0;             // Requests written over the lifetime.

  void Connect(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    LC_CHECK(fd >= 0) << "socket: " << std::strerror(errno);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    LC_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0)
        << "connect(" << path << "): " << std::strerror(errno);
  }
  void SendAll(std::string_view bytes) {
    size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                               MSG_NOSIGNAL);
      LC_CHECK(n > 0) << "send: " << std::strerror(errno);
      done += static_cast<size_t>(n);
    }
  }
  std::string ReadLine() {
    while (true) {
      const size_t newline = buffer.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      LC_CHECK(n > 0) << "recv: "
                      << (n == 0 ? "unexpected EOF" : std::strerror(errno));
      buffer.append(chunk, static_cast<size_t>(n));
    }
  }
  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

struct SocketLoadResult {
  double seconds = 0.0;
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  size_t requests = 0;
  lc::serve::Stats stats;
  lc::serve::net::SocketServer::NetStats net;
};

// Closed-loop over the wire: `conns` connections stay established for the
// whole run, partitioned across `clients` worker threads. Each round a
// thread writes a pipelined burst on EVERY one of its connections before
// reading any responses back, so at the burst peak all `conns` connections
// have `pipeline` requests in flight simultaneously. Every response is
// LC_CHECKed bit-identical to `expected` for the query it answered —
// framing, pipelining and the event loop must not change the bits (or the
// order). When `qerr_bound` > 0 (the --quant mode: int8-scored responses
// against fp32 ground truth) the gate relaxes to that q-error bound.
SocketLoadResult RunSocketLoad(lc::MscnEstimator* estimator,
                               const lc::Schema& schema,
                               const lc::SampleSet& samples,
                               const std::vector<std::string>& texts,
                               const std::vector<double>& expected,
                               size_t total_requests, int clients,
                               size_t conns, size_t pipeline,
                               double qerr_bound, int loops) {
  // The whole point is conns * pipeline requests in flight at once; size
  // admission for that window so the bench measures the transport, not
  // overload shedding (which would fail the bit-match gate with ERR lines).
  lc::serve::ServerConfig server_config = lc::serve::ServerConfig::FromEnv();
  server_config.queue_capacity =
      std::max(server_config.queue_capacity, conns * pipeline);
  lc::serve::EstimatorServer server(estimator, &schema, &samples,
                                    server_config);
  const std::string path =
      "/tmp/lc_serve_load_" + std::to_string(::getpid()) + ".sock";
  lc::serve::net::SocketServerConfig net_config;
  net_config.listen = {"unix:" + path};
  net_config.idle_timeout_ms = 0;
  net_config.stats_interval_ms = 0;
  net_config.backend = lc::GetEnvString("LC_SERVE_EVENT_BACKEND", "");
  net_config.loops = loops;
  lc::serve::net::SocketServer net(&server, net_config);
  const lc::Status started = net.Start();
  LC_CHECK(started.ok()) << started;

  const size_t rounds =
      std::max<size_t>(1, (total_requests + conns * pipeline - 1) /
                              (conns * pipeline));
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::atomic<size_t> bit_mismatches{0};

  lc::WallTimer wall;
  std::vector<std::thread> threads;
  for (int client = 0; client < clients; ++client) {
    threads.emplace_back([&, client] {
      const size_t begin = conns * static_cast<size_t>(client) /
                           static_cast<size_t>(clients);
      const size_t end = conns * static_cast<size_t>(client + 1) /
                         static_cast<size_t>(clients);
      std::vector<PipelinedConn> mine(end - begin);
      for (size_t c = 0; c < mine.size(); ++c) mine[c].Connect(path);
      std::vector<double>& lat = latencies[static_cast<size_t>(client)];
      lat.reserve(rounds * mine.size() * pipeline);

      for (size_t round = 0; round < rounds; ++round) {
        // Burst phase: a pipelined window on every connection first …
        for (size_t c = 0; c < mine.size(); ++c) {
          PipelinedConn& conn = mine[c];
          const size_t conn_id = begin + c;
          std::string burst;
          conn.picks.clear();
          for (size_t k = 0; k < pipeline; ++k) {
            const size_t pick =
                ((conn.sent + k) * 2654435761ULL + conn_id * 97ULL) %
                texts.size();
            conn.picks.push_back(pick);
            burst += texts[pick];
            burst += '\n';
          }
          conn.burst_timer = lc::WallTimer();
          conn.SendAll(burst);
          conn.sent += pipeline;
        }
        // … then the harvest: responses come back in request order.
        for (PipelinedConn& conn : mine) {
          for (const size_t pick : conn.picks) {
            const std::string line = conn.ReadLine();
            lat.push_back(conn.burst_timer.Seconds() * 1e6);
            bool matches = lc::StartsWith(line, "EST ");
            if (matches) {
              std::string_view text = std::string_view(line).substr(4);
              text = text.substr(0, text.find(' '));
              double got = 0.0;
              matches = lc::ParseDouble(text, &got).ok() &&
                        (qerr_bound > 0.0
                             ? QError(got, expected[pick]) <= qerr_bound
                             : got == expected[pick]);
            }
            if (!matches) {
              bit_mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
      for (PipelinedConn& conn : mine) conn.Close();
    });
  }
  for (std::thread& thread : threads) thread.join();

  SocketLoadResult result;
  result.seconds = wall.Seconds();
  result.stats = server.GetStats();
  result.net = net.net_stats();
  net.Shutdown();
  server.Shutdown();
  LC_CHECK(bit_mismatches.load() == 0)
      << bit_mismatches.load()
      << " socket responses diverged from direct EstimateAll"
      << (qerr_bound > 0.0
              ? lc::Format(" beyond the q-error bound %.2f", qerr_bound)
              : std::string());

  std::vector<double> all;
  for (const std::vector<double>& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  result.requests = all.size();
  LC_CHECK(result.requests == rounds * conns * pipeline);
  result.throughput_qps = static_cast<double>(all.size()) / result.seconds;
  result.p50_us = lc::Quantile(all, 0.50);
  result.p95_us = lc::Quantile(all, 0.95);
  result.p99_us = lc::Quantile(all, 0.99);
  result.mean_us = lc::Mean(all);
  return result;
}

void PrintSocketRow(const char* name, const SocketLoadResult& result) {
  std::cout << lc::Format(
      "%-12s %10.0f qps %10.1f us %10.1f us %10.1f us %10.1f us\n", name,
      result.throughput_qps, result.p50_us, result.p95_us, result.p99_us,
      result.mean_us);
}

void PrintSocketJson(std::ostream& os, const std::string& name,
                     const SocketLoadResult& result, size_t conns,
                     size_t pipeline, int loops) {
  std::string loop_conns = "[";
  for (size_t i = 0; i < result.net.loop_conns.size(); ++i) {
    loop_conns += lc::Format(
        "%s%llu", i == 0 ? "" : ", ",
        static_cast<unsigned long long>(result.net.loop_conns[i]));
  }
  loop_conns += "]";
  os << lc::Format(
      "    \"%s\": { \"seconds\": %.3f, \"throughput_qps\": %.0f, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
      "\"mean_us\": %.1f, \"requests\": %zu, \"conns\": %zu, "
      "\"pipeline\": %zu, \"loops\": %d, \"served\": %llu, "
      "\"admission_cache_hits\": %llu, "
      "\"model_batches\": %llu, \"mean_batch\": %.2f, \"lines_in\": %llu, "
      "\"responses_out\": %llu, \"read_pauses\": %llu, "
      "\"handoffs\": %llu, \"loop_conns\": %s }",
      name.c_str(), result.seconds, result.throughput_qps, result.p50_us,
      result.p95_us, result.p99_us, result.mean_us, result.requests, conns,
      pipeline, loops, static_cast<unsigned long long>(result.stats.served),
      static_cast<unsigned long long>(result.stats.admission_cache_hits),
      static_cast<unsigned long long>(result.stats.model_batches),
      result.stats.batch_size.mean(),
      static_cast<unsigned long long>(result.net.lines_in),
      static_cast<unsigned long long>(result.net.responses_out),
      static_cast<unsigned long long>(result.net.read_pauses),
      static_cast<unsigned long long>(result.net.handoffs),
      loop_conns.c_str());
}

void PrintRow(const char* name, const LoadResult& result) {
  std::cout << lc::Format(
      "%-12s %10.0f qps %10.1f us %10.1f us %10.1f us %10.1f us\n", name,
      result.throughput_qps, result.p50_us, result.p95_us, result.p99_us,
      result.mean_us);
}

void PrintJson(std::ostream& os, const char* name, const LoadResult& result) {
  os << lc::Format(
      "    \"%s\": { \"seconds\": %.3f, \"throughput_qps\": %.0f, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
      "\"mean_us\": %.1f, \"served\": %llu, \"admission_cache_hits\": %llu, "
      "\"model_batches\": %llu, \"mean_batch\": %.2f, "
      "\"mean_queue_wait_us\": %.1f, \"cache_hits\": %llu, "
      "\"cache_misses\": %llu }",
      name, result.seconds, result.throughput_qps, result.p50_us,
      result.p95_us, result.p99_us, result.mean_us,
      static_cast<unsigned long long>(result.stats.served),
      static_cast<unsigned long long>(result.stats.admission_cache_hits),
      static_cast<unsigned long long>(result.stats.model_batches),
      result.stats.batch_size.mean(), result.stats.queue_wait_us.mean(),
      static_cast<unsigned long long>(result.cache.hits),
      static_cast<unsigned long long>(result.cache.misses));
}

}  // namespace

int main(int argc, char** argv) {
  bool socket_mode = false;
  bool quant_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--transport=socket") {
      socket_mode = true;
    } else if (arg == "--transport=direct") {
      socket_mode = false;
    } else if (arg == "--quant") {
      quant_mode = true;
    } else {
      std::cerr << "unknown flag: " << arg
                << " (supported: --transport=direct|socket, --quant)\n";
      return 2;
    }
  }

  lc::Experiment experiment;
  std::cout << (socket_mode
                    ? "=== Serving front-end: socket-transport load ===\n"
                    : "=== Serving front-end: closed-loop load ===\n");
  if (quant_mode) std::cout << "(--quant: int8 snapshot on the serve path)\n";
  experiment.PrintSetup(std::cout);

  const size_t total_requests = static_cast<size_t>(
      std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_REQUESTS", 20000)));
  const int clients = static_cast<int>(
      std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_CLIENTS", 8)));
  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  const size_t distinct = std::min<size_t>(
      static_cast<size_t>(
          std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_DISTINCT", 512))),
      synthetic.size());

  lc::MscnModel& model = experiment.Model(lc::FeatureVariant::kBitmaps);
  const lc::Featurizer& featurizer =
      experiment.FeaturizerFor(lc::FeatureVariant::kBitmaps);
  const lc::Schema& schema = experiment.db().schema();
  const lc::SampleSet& samples = experiment.samples();

  std::vector<std::string> texts;
  std::vector<const lc::LabeledQuery*> pointers;
  texts.reserve(distinct);
  pointers.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    texts.push_back(synthetic.queries[i].query.Serialize());
    pointers.push_back(&synthetic.queries[i]);
  }

  // Ground truth for the bit-match gate: the pure batched forward pass.
  lc::MscnEstimator direct(&featurizer, &model, "direct",
                           /*cache_capacity=*/0);
  const std::vector<double> expected = direct.EstimateAll(pointers, 64);

  // --quant: the policy and calibration workload every load estimator gets.
  // The distinct query set doubles as the calibration batch, so the gate
  // admits exactly the drift the relaxed response gate then asserts. The
  // default bound is looser than the 1.05 policy default — this is a load
  // bench, not an accuracy gate — but LC_NN_QUANT_QERR still overrides.
  lc::QuantPolicy quant_policy = lc::QuantPolicy::FromEnv();
  std::vector<lc::LabeledQuery> calibration;
  if (quant_mode) {
    quant_policy.int8_enabled = true;
    if (lc::GetEnvString("LC_NN_QUANT_QERR", "").empty()) {
      quant_policy.max_qerr = 1.25;
    }
    for (size_t i = 0; i < distinct; ++i) {
      calibration.push_back(synthetic.queries[i]);
    }
  }
  const double qerr_bound = quant_mode ? quant_policy.max_qerr : 0.0;
  const auto configure_quant = [&](lc::MscnEstimator& estimator) {
    if (!quant_mode) return;
    estimator.ConfigureQuantization(quant_policy, calibration);
    LC_CHECK(estimator.quantized_active())
        << "q-error gate refused int8 publication at bound "
        << quant_policy.max_qerr << " — nothing to measure";
  };

  const lc::serve::ServerConfig server_config =
      lc::serve::ServerConfig::FromEnv();

  if (socket_mode) {
    const size_t conns = static_cast<size_t>(
        std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_CONNS", 256)));
    const size_t pipeline = static_cast<size_t>(
        std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_PIPELINE", 8)));
    // The sharding sweep: rerun the whole load at each requested loop
    // count. Default is the single-loop transport; the BENCH_pr8_loops
    // record uses "1,2,4".
    std::vector<int> loop_counts;
    for (const std::string& piece :
         lc::Split(lc::GetEnvString("LC_SERVE_LOAD_LOOPS", "1"), ',')) {
      const std::string trimmed = lc::Trim(piece);
      if (trimmed.empty()) continue;
      int32_t value = 0;
      const lc::Status parsed = lc::ParseInt32(trimmed, 0, &value);
      LC_CHECK(parsed.ok() && value >= 1)
          << "bad LC_SERVE_LOAD_LOOPS entry '" << trimmed << "'";
      loop_counts.push_back(value);
    }
    LC_CHECK(!loop_counts.empty()) << "LC_SERVE_LOAD_LOOPS resolved empty";

    std::cout << lc::Format(
        "requests=%zu clients=%d conns=%zu pipeline=%zu distinct=%zu | "
        "lanes=%d batch=%zu window=%lldus\n\n",
        total_requests, clients, conns, pipeline, distinct,
        server_config.lanes, server_config.max_batch,
        static_cast<long long>(server_config.window_us));
    std::cout << lc::Format("%-12s %14s %13s %13s %13s %13s\n",
                            "cache@loops", "throughput", "p50", "p95", "p99",
                            "mean");

    size_t total_gated = 0;
    std::vector<std::pair<std::string, SocketLoadResult>> records;
    for (const int loops : loop_counts) {
      lc::MscnEstimator sock_off(&featurizer, &model, "MSCN",
                                 /*cache_capacity=*/0);
      configure_quant(sock_off);
      const SocketLoadResult off_result = RunSocketLoad(
          &sock_off, schema, samples, texts, expected, total_requests,
          clients, conns, pipeline, qerr_bound, loops);
      PrintSocketRow(lc::Format("off@%d", loops).c_str(), off_result);

      lc::MscnEstimator sock_on(&featurizer, &model, "MSCN+cache",
                                /*cache_capacity=*/-1);
      configure_quant(sock_on);
      const SocketLoadResult on_result = RunSocketLoad(
          &sock_on, schema, samples, texts, expected, total_requests,
          clients, conns, pipeline, qerr_bound, loops);
      PrintSocketRow(lc::Format("on@%d", loops).c_str(), on_result);

      // The work-division evidence: lifetime connections owned per loop.
      std::string division;
      for (size_t i = 0; i < on_result.net.loop_conns.size(); ++i) {
        division += lc::Format("%s%llu", i == 0 ? "" : "/",
                               static_cast<unsigned long long>(
                                   on_result.net.loop_conns[i]));
      }
      std::cout << lc::Format(
          "  loops=%d conns-per-loop=%s handoffs=%llu\n", loops,
          division.c_str(),
          static_cast<unsigned long long>(on_result.net.handoffs));

      total_gated += off_result.requests + on_result.requests;
      records.emplace_back(lc::Format("socket_cache_off_loops%d", loops),
                           off_result);
      records.emplace_back(lc::Format("socket_cache_on_loops%d", loops),
                           on_result);
    }

    if (quant_mode) {
      std::cout << lc::Format(
          "\nq-error gate: all %zu int8-scored responses over %zu "
          "concurrent connections within %.2fx of direct EstimateAll "
          "(cache on and off, every loop count)\n",
          total_gated, conns, qerr_bound);
    } else {
      std::cout << lc::Format(
          "\nbit-match: all %zu responses over %zu concurrent connections "
          "identical to direct EstimateAll (cache on and off, every loop "
          "count)\n",
          total_gated, conns);
    }
    std::cout << "\nJSON fragment for BENCH records:\n{\n";
    for (size_t i = 0; i < records.size(); ++i) {
      const int loops = std::stoi(records[i].first.substr(
          records[i].first.find("loops") + 5));
      PrintSocketJson(std::cout, records[i].first, records[i].second, conns,
                      pipeline, loops);
      std::cout << (i + 1 < records.size() ? ",\n" : "\n");
    }
    std::cout << "}\n";
    return 0;
  }

  std::cout << lc::Format(
      "requests=%zu clients=%d distinct=%zu | lanes=%d queue=%zu batch=%zu "
      "window=%lldus\n\n",
      total_requests, clients, distinct, server_config.lanes,
      server_config.queue_capacity, server_config.max_batch,
      static_cast<long long>(server_config.window_us));
  std::cout << lc::Format("%-12s %14s %13s %13s %13s %13s\n", "cache",
                          "throughput", "p50", "p95", "p99", "mean");

  // --quant: a plain fp32 pass first, on the same cache-off workload, so
  // the int8 row below has its baseline.
  LoadResult fp32_baseline;
  if (quant_mode) {
    lc::MscnEstimator fp32_est(&featurizer, &model, "MSCN-fp32",
                               /*cache_capacity=*/0);
    fp32_baseline =
        RunLoad(&fp32_est, schema, samples, texts, total_requests, clients);
    PrintRow("fp32-off", fp32_baseline);
  }

  lc::MscnEstimator cache_off(&featurizer, &model, "MSCN",
                              /*cache_capacity=*/0);
  configure_quant(cache_off);
  const LoadResult off =
      RunLoad(&cache_off, schema, samples, texts, total_requests, clients);
  PrintRow(quant_mode ? "int8-off" : "off", off);

  lc::MscnEstimator cache_on(&featurizer, &model, "MSCN+cache",
                             /*cache_capacity=*/-1);
  configure_quant(cache_on);
  const LoadResult on =
      RunLoad(&cache_on, schema, samples, texts, total_requests, clients);
  PrintRow(quant_mode ? "int8-on" : "on", on);
  lc::PrintCacheCounters(std::cout, cache_on.name(),
                         cache_on.cache_counters());

  // Bit-match gate: the server path (parse → validate → relabel → batched
  // EstimateBatch, cache on or off) must reproduce EstimateAll exactly.
  // Under --quant the server path scores int8 while EstimateAll stays
  // fp32, so the gate relaxes to the admitted q-error bound instead.
  for (const bool use_cache : {false, true}) {
    lc::MscnEstimator estimator(&featurizer, &model, "verify",
                                use_cache ? int64_t{4096} : int64_t{0});
    configure_quant(estimator);
    lc::serve::EstimatorServer server(&estimator, &schema, &samples);
    for (size_t i = 0; i < distinct; ++i) {
      const lc::serve::Response response = server.Submit(texts[i]);
      LC_CHECK(response.status.ok()) << response.status;
      if (quant_mode) {
        LC_CHECK(QError(response.estimate, expected[i]) <= qerr_bound)
            << "int8 server estimate drifted past the q-error bound "
            << qerr_bound << " (cache=" << (use_cache ? "on" : "off")
            << ", query " << i << "): " << response.estimate << " vs "
            << expected[i];
      } else {
        LC_CHECK(response.estimate == expected[i])
            << "server estimate diverged from EstimateAll (cache="
            << (use_cache ? "on" : "off") << ", query " << i << "): "
            << response.estimate << " vs " << expected[i];
      }
    }
  }
  if (quant_mode) {
    std::cout << lc::Format(
        "\nq-error gate: int8 server estimates within %.2fx of direct "
        "fp32 EstimateAll over all %zu distinct queries (cache on and "
        "off)\n",
        qerr_bound, distinct);
  } else {
    std::cout << "\nbit-match: server estimates identical to direct "
                 "EstimateAll over all "
              << distinct << " distinct queries (cache on and off)\n";
  }

  if (quant_mode) {
    // The drift the gate admitted, measured over the distinct set, plus
    // the headline fp32→int8 throughput ratio on the cache-miss path.
    lc::Tape tape;
    std::vector<double> int8_estimates;
    cache_off.EstimateBatch(pointers, &tape, &int8_estimates, nullptr);
    const lc::QuantDrift drift =
        lc::QuantizationDrift(expected, int8_estimates);
    const double speedup = fp32_baseline.throughput_qps > 0.0
                               ? off.throughput_qps /
                                     fp32_baseline.throughput_qps
                               : 0.0;
    std::cout << lc::Format(
        "quant: published=%llu fallbacks=%llu drift median=%.4f "
        "p95=%.4f bound=%.2f | int8/fp32 throughput=%.2fx\n",
        static_cast<unsigned long long>(cache_off.quant_counters().published),
        static_cast<unsigned long long>(cache_off.quant_counters().fallbacks),
        drift.median, drift.p95, qerr_bound, speedup);
    std::cout << "\nJSON fragment for BENCH records:\n{\n";
    PrintJson(std::cout, "quant_fp32_off", fp32_baseline);
    std::cout << ",\n";
    PrintJson(std::cout, "quant_int8_off", off);
    std::cout << ",\n";
    PrintJson(std::cout, "quant_int8_on", on);
    std::cout << lc::Format(
        ",\n    \"quant_gate\": { \"bound\": %.2f, \"drift_median\": %.4f, "
        "\"drift_p95\": %.4f, \"int8_speedup\": %.2f, "
        "\"quantized_swaps\": %llu, \"quant_fallbacks\": %llu }",
        qerr_bound, drift.median, drift.p95, speedup,
        static_cast<unsigned long long>(cache_off.quant_counters().published),
        static_cast<unsigned long long>(
            cache_off.quant_counters().fallbacks));
    std::cout << "\n}\n";
    return 0;  // Retrain modes are fp32-only; their gates assume bit-match.
  }

  if (lc::GetEnvInt("LC_SERVE_LOAD_RETRAIN", 1) == 0) {
    std::cout << "\nJSON fragment for BENCH records:\n{\n";
    PrintJson(std::cout, "cache_off", off);
    std::cout << ",\n";
    PrintJson(std::cout, "cache_on", on);
    std::cout << "\n}\n";
    return 0;
  }

  // ---- Retrain-during-load: in-place stall vs copy-train-swap ----
  // Cache off: every request is a cache miss, the path the in-place
  // write lock stalls. The model starts from a private copy per mode so
  // both retrain the same weights over the same data.
  const lc::Workload& training = experiment.TrainingWorkload();
  const size_t retrain_queries = std::min<size_t>(
      static_cast<size_t>(std::max<int64_t>(
          1, lc::GetEnvInt("LC_SERVE_LOAD_RETRAIN_QUERIES", 2000))),
      training.size());
  const int retrain_epochs = static_cast<int>(std::max<int64_t>(
      1, lc::GetEnvInt("LC_SERVE_LOAD_RETRAIN_EPOCHS", 2)));
  std::vector<const lc::LabeledQuery*> retrain_set;
  retrain_set.reserve(retrain_queries);
  for (size_t i = 0; i < retrain_queries; ++i) {
    retrain_set.push_back(&training.queries[i]);
  }
  lc::MscnConfig retrain_config = experiment.config().mscn;
  retrain_config.variant = lc::FeatureVariant::kBitmaps;
  lc::Trainer trainer(&featurizer, retrain_config);

  std::cout << lc::Format(
      "\n=== Retrain during load (cache off, %zu retrain queries x %d "
      "epochs) ===\n",
      retrain_queries, retrain_epochs);

  // Legacy in-place protocol: misses stall behind the write lock for the
  // whole retrain.
  auto inplace_model = std::make_shared<lc::MscnModel>(model);
  lc::MscnEstimator inplace_est(&featurizer, inplace_model, "inplace",
                                /*cache_capacity=*/0);
  const RetrainLoadResult inplace = RunRetrainLoad(
      &inplace_est, schema, samples, texts, clients,
      [&](lc::serve::EstimatorServer&) {
        auto guard = inplace_est.AcquireModelWriteLock();
        trainer.ContinueTraining(inplace_est.model_snapshot().get(),
                                 retrain_set, {}, retrain_epochs, nullptr);
      });
  PrintRetrainRow("inplace", inplace);

  // Copy-train-swap through the server's ADMIN RETRAIN verb: the clone
  // trains in the background, the swap is a pointer exchange.
  auto swap_model = std::make_shared<lc::MscnModel>(model);
  lc::MscnEstimator swap_est(&featurizer, swap_model, "swap",
                             /*cache_capacity=*/0);
  const RetrainLoadResult swap = RunRetrainLoad(
      &swap_est, schema, samples, texts, clients,
      [&](lc::serve::EstimatorServer& server) {
        server.set_retrain_fn([&] {
          auto fresh = trainer.TrainClone(*swap_est.model_snapshot(),
                                          retrain_set, {}, retrain_epochs,
                                          nullptr);
          swap_est.SwapModel(std::move(fresh));
          return lc::Status::OK();
        });
        const std::string line = server.HandleLine("ADMIN RETRAIN");
        LC_CHECK(lc::StartsWith(line, "OK")) << line;
        while (server.retrain_in_flight()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  PrintRetrainRow("swap", swap);
  LC_CHECK(swap.stats.model_swaps == 1u)
      << "ADMIN RETRAIN did not publish a swap";

  // Both modes retrained identical weights over identical data, so the
  // post-retrain models must agree bit-for-bit: the swap path changes
  // *when* requests see the new model, never *what* it computes.
  {
    lc::MscnEstimator a(&featurizer, inplace_est.model_snapshot(), "a",
                        /*cache_capacity=*/0);
    lc::MscnEstimator b(&featurizer, swap_est.model_snapshot(), "b",
                        /*cache_capacity=*/0);
    const std::vector<double> ea = a.EstimateAll(pointers, 64);
    const std::vector<double> eb = b.EstimateAll(pointers, 64);
    LC_CHECK(ea == eb)
        << "in-place and swap retrains diverged on identical data";
  }

  // Lazy stale-entry retirement, observable end to end (cache on): warm
  // every distinct query, swap, then re-serve — each old entry must be
  // retired individually by the lookup that discovers it, and post-swap
  // estimates must bit-match a direct EstimateAll on the new model.
  uint64_t retirements = 0;
  {
    auto live_model = std::make_shared<lc::MscnModel>(model);
    lc::MscnEstimator estimator(&featurizer, live_model, "swap+cache",
                                /*cache_capacity=*/4096);
    lc::serve::EstimatorServer server(&estimator, &schema, &samples);
    server.set_retrain_fn([&] {
      auto fresh = trainer.TrainClone(*estimator.model_snapshot(),
                                      retrain_set, {}, 1, nullptr);
      estimator.SwapModel(std::move(fresh));
      return lc::Status::OK();
    });
    for (size_t i = 0; i < distinct; ++i) {
      LC_CHECK(server.Submit(texts[i]).status.ok());
    }
    const std::string line = server.HandleLine("ADMIN RETRAIN");
    LC_CHECK(lc::StartsWith(line, "OK")) << line;
    while (server.retrain_in_flight()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    lc::MscnEstimator fresh_direct(&featurizer, estimator.model_snapshot(),
                                   "direct", /*cache_capacity=*/0);
    const std::vector<double> fresh_expected =
        fresh_direct.EstimateAll(pointers, 64);
    for (size_t i = 0; i < distinct; ++i) {
      const lc::serve::Response response = server.Submit(texts[i]);
      LC_CHECK(response.status.ok()) << response.status;
      LC_CHECK(response.estimate == fresh_expected[i])
          << "post-swap estimate diverged from the new model at query " << i;
    }
    retirements = server.GetStats().stale_retirements;
    LC_CHECK(retirements >= distinct)
        << "expected every warmed entry to retire lazily, saw "
        << retirements;
  }
  std::cout << lc::Format(
      "\npost-swap: all %zu warmed cache entries retired lazily "
      "(%llu stale retirements), estimates bit-match the new model\n",
      distinct, static_cast<unsigned long long>(retirements));

  std::cout << "\nJSON fragment for BENCH records:\n{\n";
  PrintJson(std::cout, "cache_off", off);
  std::cout << ",\n";
  PrintJson(std::cout, "cache_on", on);
  std::cout << ",\n";
  PrintRetrainJson(std::cout, "retrain_inplace", inplace);
  std::cout << ",\n";
  PrintRetrainJson(std::cout, "retrain_swap", swap);
  std::cout << lc::Format(
      ",\n    \"swap_lazy_retirement\": { \"distinct\": %zu, "
      "\"stale_retirements\": %llu }",
      distinct, static_cast<unsigned long long>(retirements));
  std::cout << "\n}\n";
  return 0;
}
