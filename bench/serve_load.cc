// Closed-loop load generator for the serving front-end: C client threads
// submit query text to a live EstimatorServer and measure per-request
// latency (p50/p95/p99) and throughput, with the estimator result cache on
// vs. off. The request stream draws from a fixed set of distinct queries,
// so the cache-on run converges to the warm-hit fast path the way real
// optimizer traffic (repeating templates) does.
//
// Also the end-to-end determinism gate for the serving path: every distinct
// query's server estimate is LC_CHECKed bit-identical to a direct
// MscnEstimator::EstimateAll over the same queries (see
// docs/ARCHITECTURE.md, "Serving"). Recorded in BENCH_pr4_serve.json.
//
// Knobs: LC_SERVE_LOAD_REQUESTS (default 20000), LC_SERVE_LOAD_CLIENTS (8),
// LC_SERVE_LOAD_DISTINCT (512), plus the server's own LC_SERVE_* set.

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "eval/report.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/str.h"
#include "util/timer.h"

namespace {

struct LoadResult {
  double seconds = 0.0;
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  lc::serve::Stats stats;
  lc::CacheCounters cache;
};

LoadResult RunLoad(lc::MscnEstimator* estimator, const lc::Schema& schema,
                   const lc::SampleSet& samples,
                   const std::vector<std::string>& texts,
                   size_t total_requests, int clients) {
  lc::serve::EstimatorServer server(estimator, &schema, &samples);
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));

  lc::WallTimer wall;
  std::vector<std::thread> threads;
  for (int client = 0; client < clients; ++client) {
    threads.emplace_back([&, client] {
      std::vector<double>& mine = latencies[static_cast<size_t>(client)];
      const size_t begin = total_requests * static_cast<size_t>(client) /
                           static_cast<size_t>(clients);
      const size_t end = total_requests * static_cast<size_t>(client + 1) /
                         static_cast<size_t>(clients);
      mine.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        // Deterministic per-request pick, uncorrelated across clients.
        const size_t pick =
            (i * 2654435761ULL + static_cast<size_t>(client) * 97ULL) %
            texts.size();
        lc::WallTimer timer;
        const lc::serve::Response response = server.Submit(texts[pick]);
        mine.push_back(timer.Seconds() * 1e6);
        LC_CHECK(response.status.ok())
            << "request rejected under load: " << response.status;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadResult result;
  result.seconds = wall.Seconds();
  result.stats = server.GetStats();
  result.cache = estimator->cache_counters();
  server.Shutdown();

  std::vector<double> all;
  all.reserve(total_requests);
  for (const std::vector<double>& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  result.throughput_qps = static_cast<double>(all.size()) / result.seconds;
  result.p50_us = lc::Quantile(all, 0.50);
  result.p95_us = lc::Quantile(all, 0.95);
  result.p99_us = lc::Quantile(all, 0.99);
  result.mean_us = lc::Mean(all);
  return result;
}

void PrintRow(const char* name, const LoadResult& result) {
  std::cout << lc::Format(
      "%-12s %10.0f qps %10.1f us %10.1f us %10.1f us %10.1f us\n", name,
      result.throughput_qps, result.p50_us, result.p95_us, result.p99_us,
      result.mean_us);
}

void PrintJson(std::ostream& os, const char* name, const LoadResult& result) {
  os << lc::Format(
      "    \"%s\": { \"seconds\": %.3f, \"throughput_qps\": %.0f, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
      "\"mean_us\": %.1f, \"served\": %llu, \"admission_cache_hits\": %llu, "
      "\"model_batches\": %llu, \"mean_batch\": %.2f, "
      "\"mean_queue_wait_us\": %.1f, \"cache_hits\": %llu, "
      "\"cache_misses\": %llu }",
      name, result.seconds, result.throughput_qps, result.p50_us,
      result.p95_us, result.p99_us, result.mean_us,
      static_cast<unsigned long long>(result.stats.served),
      static_cast<unsigned long long>(result.stats.admission_cache_hits),
      static_cast<unsigned long long>(result.stats.model_batches),
      result.stats.batch_size.mean(), result.stats.queue_wait_us.mean(),
      static_cast<unsigned long long>(result.cache.hits),
      static_cast<unsigned long long>(result.cache.misses));
}

}  // namespace

int main() {
  lc::Experiment experiment;
  std::cout << "=== Serving front-end: closed-loop load ===\n";
  experiment.PrintSetup(std::cout);

  const size_t total_requests = static_cast<size_t>(
      std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_REQUESTS", 20000)));
  const int clients = static_cast<int>(
      std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_CLIENTS", 8)));
  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  const size_t distinct = std::min<size_t>(
      static_cast<size_t>(
          std::max<int64_t>(1, lc::GetEnvInt("LC_SERVE_LOAD_DISTINCT", 512))),
      synthetic.size());

  lc::MscnModel& model = experiment.Model(lc::FeatureVariant::kBitmaps);
  const lc::Featurizer& featurizer =
      experiment.FeaturizerFor(lc::FeatureVariant::kBitmaps);
  const lc::Schema& schema = experiment.db().schema();
  const lc::SampleSet& samples = experiment.samples();

  std::vector<std::string> texts;
  std::vector<const lc::LabeledQuery*> pointers;
  texts.reserve(distinct);
  pointers.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    texts.push_back(synthetic.queries[i].query.Serialize());
    pointers.push_back(&synthetic.queries[i]);
  }

  // Ground truth for the bit-match gate: the pure batched forward pass.
  lc::MscnEstimator direct(&featurizer, &model, "direct",
                           /*cache_capacity=*/0);
  const std::vector<double> expected = direct.EstimateAll(pointers, 64);

  const lc::serve::ServerConfig server_config =
      lc::serve::ServerConfig::FromEnv();
  std::cout << lc::Format(
      "requests=%zu clients=%d distinct=%zu | lanes=%d queue=%zu batch=%zu "
      "window=%lldus\n\n",
      total_requests, clients, distinct, server_config.lanes,
      server_config.queue_capacity, server_config.max_batch,
      static_cast<long long>(server_config.window_us));
  std::cout << lc::Format("%-12s %14s %13s %13s %13s %13s\n", "cache",
                          "throughput", "p50", "p95", "p99", "mean");

  lc::MscnEstimator cache_off(&featurizer, &model, "MSCN",
                              /*cache_capacity=*/0);
  const LoadResult off =
      RunLoad(&cache_off, schema, samples, texts, total_requests, clients);
  PrintRow("off", off);

  lc::MscnEstimator cache_on(&featurizer, &model, "MSCN+cache",
                             /*cache_capacity=*/-1);
  const LoadResult on =
      RunLoad(&cache_on, schema, samples, texts, total_requests, clients);
  PrintRow("on", on);
  lc::PrintCacheCounters(std::cout, cache_on.name(),
                         cache_on.cache_counters());

  // Bit-match gate: the server path (parse → validate → relabel → batched
  // EstimateBatch, cache on or off) must reproduce EstimateAll exactly.
  for (const bool use_cache : {false, true}) {
    lc::MscnEstimator estimator(&featurizer, &model, "verify",
                                use_cache ? int64_t{4096} : int64_t{0});
    lc::serve::EstimatorServer server(&estimator, &schema, &samples);
    for (size_t i = 0; i < distinct; ++i) {
      const lc::serve::Response response = server.Submit(texts[i]);
      LC_CHECK(response.status.ok()) << response.status;
      LC_CHECK(response.estimate == expected[i])
          << "server estimate diverged from EstimateAll (cache="
          << (use_cache ? "on" : "off") << ", query " << i << "): "
          << response.estimate << " vs " << expected[i];
    }
  }
  std::cout << "\nbit-match: server estimates identical to direct "
               "EstimateAll over all "
            << distinct << " distinct queries (cache on and off)\n";

  std::cout << "\nJSON fragment for BENCH records:\n{\n";
  PrintJson(std::cout, "cache_off", off);
  std::cout << ",\n";
  PrintJson(std::cout, "cache_on", on);
  std::cout << "\n}\n";
  return 0;
}
