// Microbenchmarks of the neural-network substrate: matmul kernels per
// backend (scalar / AVX2 / AVX-512), the int8 quantized layer pipeline, a
// full MSCN-shaped forward pass (fp32 and quantized), a training step
// (forward + backward + Adam), and batched inference — the cost model
// behind section 4.7.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/featurizer.h"
#include "core/model.h"
#include "core/mscn_estimator.h"
#include "core/quantized_model.h"
#include "core/trainer.h"
#include "imdb/imdb.h"
#include "nn/adam.h"
#include "nn/kernels.h"
#include "nn/tensor.h"
#include "workload/generator.h"

namespace lc {
namespace {

const nn::KernelOps* BackendOps(int64_t which) {
  switch (static_cast<nn::KernelBackend>(which)) {
    case nn::KernelBackend::kScalar:
      return &nn::ScalarKernelOps();
    case nn::KernelBackend::kAvx2:
      return nn::Avx2KernelOps();
    case nn::KernelBackend::kAvx512:
      return nn::Avx512KernelOps();
  }
  return nullptr;
}

const char* BackendArgName(int64_t which) {
  return nn::KernelBackendName(static_cast<nn::KernelBackend>(which));
}

void BM_MatMul(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t k = state.range(1);
  const int64_t n = state.range(2);
  Rng rng(1);
  const Tensor a = Tensor::Randn({m, k}, 1.0f, &rng);
  const Tensor b = Tensor::Randn({k, n}, 1.0f, &rng);
  Tensor c;
  for (auto _ : state) {
    MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_MatMul)
    ->Args({128, 134, 64})
    ->Args({384, 134, 64})
    ->Args({128, 64, 64})
    ->Args({512, 192, 64})
    // Paper-scale MSCN shapes (d=256): hidden layers and the wide
    // bitmaps-variant input layer, at serving batch sizes >= 64.
    ->Args({64, 256, 256})
    ->Args({256, 256, 256})
    ->Args({256, 1068, 256});

// The same GEMM pinned to one backend's dispatch table: the speedup ratios
// between the scalar/avx2/avx512 rows are the headline numbers of the
// SIMD backend work (BENCH_pr7_simd_quant.json).
void BM_GemmBackend(benchmark::State& state) {
  const nn::KernelOps* ops = BackendOps(state.range(0));
  if (ops == nullptr) {
    state.SkipWithError("backend unavailable on this build/CPU");
    return;
  }
  const int64_t m = state.range(1);
  const int64_t k = state.range(2);
  const int64_t n = state.range(3);
  Rng rng(1);
  const Tensor a = Tensor::Randn({m, k}, 1.0f, &rng);
  const Tensor b = Tensor::Randn({k, n}, 1.0f, &rng);
  Tensor c({m, n});
  for (auto _ : state) {
    ops->gemm(a.data(), b.data(), c.data(), m, k, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  state.SetLabel(BackendArgName(state.range(0)));
}
BENCHMARK(BM_GemmBackend)
    ->ArgNames({"backend", "m", "k", "n"})
    ->Args({0, 256, 256, 256})
    ->Args({1, 256, 256, 256})
    ->Args({2, 256, 256, 256})
    ->Args({0, 256, 1068, 256})
    ->Args({1, 256, 1068, 256})
    ->Args({2, 256, 1068, 256})
    ->Args({1, 64, 256, 256})
    ->Args({2, 64, 256, 256})
    // Odd shapes: the masked-remainder lanes must not fall off a cliff.
    ->Args({1, 61, 131, 67})
    ->Args({2, 61, 131, 67});

// The whole quantized linear pipeline (dynamic activation quantization,
// int8 GEMM, dequant + bias + ReLU epilogue) against the same backend's
// fp32 GEMM — the per-layer cost side of the int8 serving decision.
void BM_Int8LayerBackend(benchmark::State& state) {
  const nn::KernelOps* ops = BackendOps(state.range(0));
  if (ops == nullptr) {
    state.SkipWithError("backend unavailable on this build/CPU");
    return;
  }
  const int64_t m = state.range(1);
  const int64_t k = state.range(2);
  const int64_t n = state.range(3);
  Rng rng(8);
  const Tensor x = Tensor::Randn({m, k}, 1.0f, &rng);
  const Tensor bias = Tensor::Randn({n}, 0.1f, &rng);
  std::vector<int8_t> weight(static_cast<size_t>(k * n), 3);
  std::vector<float> weight_scales(static_cast<size_t>(n), 0.01f);
  std::vector<int8_t> quantized(static_cast<size_t>(m * k));
  std::vector<float> row_scales(static_cast<size_t>(m));
  std::vector<int32_t> acc(static_cast<size_t>(m * n));
  Tensor out({m, n});
  for (auto _ : state) {
    ops->quantize_rows(x.data(), quantized.data(), row_scales.data(), m, k);
    ops->gemm_s8s8_i32(quantized.data(), weight.data(), acc.data(), m, k, n);
    ops->dequant_bias_act(acc.data(), row_scales.data(),
                          weight_scales.data(), bias.data(), out.data(), m,
                          n, true);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  state.SetLabel(BackendArgName(state.range(0)));
}
BENCHMARK(BM_Int8LayerBackend)
    ->ArgNames({"backend", "m", "k", "n"})
    ->Args({0, 256, 256, 256})
    ->Args({1, 256, 256, 256})
    ->Args({2, 256, 256, 256})
    ->Args({2, 256, 1068, 256});

// Shared fixture: a small database, workload and featurized batch.
struct MscnFixture {
  Database db;
  Executor executor;
  SampleSet samples;
  Workload workload;
  Featurizer featurizer;

  static ImdbConfig Config() {
    ImdbConfig config;
    config.seed = 77;
    config.num_titles = 3000;
    config.num_companies = 500;
    config.num_persons = 2000;
    config.num_keywords = 600;
    return config;
  }

  MscnFixture()
      : db(GenerateImdb(Config())),
        executor(&db),
        samples(&db, 128, 3),
        workload([this] {
          GeneratorConfig generator_config;
          generator_config.seed = 5;
          QueryGenerator generator(&db, generator_config);
          return generator.GenerateLabeled(executor, samples, 256, "bench");
        }()),
        featurizer(&db, FeatureVariant::kBitmaps, 128) {}

  static MscnFixture& Get() {
    static MscnFixture* fixture = new MscnFixture();
    return *fixture;
  }
};

void BM_FeaturizeBatch(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const MscnBatch batch =
        fixture.featurizer.MakeBatch(fixture.workload, 0, batch_size, nullptr);
    benchmark::DoNotOptimize(batch.tables.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_FeaturizeBatch)->Arg(32)->Arg(128)->Arg(256);

void BM_MscnForward(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  MscnConfig config;
  config.hidden_units = 64;
  Rng rng(2);
  MscnModel model(fixture.featurizer.dims(), config, &rng);
  model.set_normalizer(TargetNormalizer(0.0, 15.0));
  const MscnBatch batch =
      fixture.featurizer.MakeBatch(fixture.workload, 0, batch_size, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_MscnForward)->Arg(1)->Arg(64)->Arg(256);

// The int8 snapshot's batched forward, comparable row-for-row with
// BM_MscnForward (same shapes, same featurized batch).
void BM_MscnForwardQuant(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  MscnConfig config;
  config.hidden_units = 64;
  Rng rng(2);
  MscnModel model(fixture.featurizer.dims(), config, &rng);
  model.set_normalizer(TargetNormalizer(0.0, 15.0));
  const auto quantized = QuantizedMscnModel::FromModel(model);
  const MscnBatch batch =
      fixture.featurizer.MakeBatch(fixture.workload, 0, batch_size, nullptr);
  std::vector<double> estimates;
  for (auto _ : state) {
    estimates.clear();
    quantized->Predict(batch, &estimates);
    benchmark::DoNotOptimize(estimates.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
  state.SetLabel(
      nn::KernelBackendName(nn::ActiveKernelBackend()));
}
BENCHMARK(BM_MscnForwardQuant)->Arg(1)->Arg(64)->Arg(256);

// Steady-state serving: EstimateAll through a reused tape workspace, the
// path the section 4.7 batched-latency numbers measure.
void BM_MscnEstimateAll(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  MscnConfig config;
  config.hidden_units = 64;
  Rng rng(6);
  MscnModel model(fixture.featurizer.dims(), config, &rng);
  model.set_normalizer(TargetNormalizer(0.0, 15.0));
  MscnEstimator estimator(&fixture.featurizer, &model);
  std::vector<const LabeledQuery*> queries;
  for (const LabeledQuery& query : fixture.workload.queries) {
    queries.push_back(&query);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateAll(queries, batch_size));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(
      nn::KernelBackendName(nn::ActiveKernelBackend()));
}
BENCHMARK(BM_MscnEstimateAll)->Arg(64)->Arg(256);

void BM_MscnTrainStep(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  MscnConfig config;
  config.hidden_units = 64;
  Rng rng(3);
  MscnModel model(fixture.featurizer.dims(), config, &rng);
  const TargetNormalizer normalizer(0.0, 15.0);
  model.set_normalizer(normalizer);
  Adam adam(model.parameters());
  const MscnBatch batch = fixture.featurizer.MakeBatch(
      fixture.workload, 0, batch_size, &normalizer);
  for (auto _ : state) {
    Tape tape;
    const Tape::NodeId prediction = model.Forward(&tape, batch);
    const Tape::NodeId loss =
        tape.MeanQErrorLoss(prediction, batch.targets, 15.0f);
    adam.ZeroGrad();
    tape.Backward(loss);
    adam.Step();
    benchmark::DoNotOptimize(tape.value(loss)[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_MscnTrainStep)->Arg(64)->Arg(128)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(4);
  Parameter parameter(Tensor::Randn({256, 256}, 0.1f, &rng));
  parameter.grad = Tensor::Randn({256, 256}, 0.1f, &rng);
  Adam adam({&parameter});
  for (auto _ : state) {
    adam.Step();
    benchmark::DoNotOptimize(parameter.value.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_AdamStep);

}  // namespace
}  // namespace lc

BENCHMARK_MAIN();
