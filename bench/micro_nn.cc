// Microbenchmarks of the neural-network substrate: matmul kernels, a full
// MSCN-shaped forward pass, a training step (forward + backward + Adam),
// and batched inference — the cost model behind section 4.7.

#include <benchmark/benchmark.h>

#include "core/featurizer.h"
#include "core/model.h"
#include "core/mscn_estimator.h"
#include "core/trainer.h"
#include "imdb/imdb.h"
#include "nn/adam.h"
#include "nn/kernels.h"
#include "nn/tensor.h"
#include "workload/generator.h"

namespace lc {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t k = state.range(1);
  const int64_t n = state.range(2);
  Rng rng(1);
  const Tensor a = Tensor::Randn({m, k}, 1.0f, &rng);
  const Tensor b = Tensor::Randn({k, n}, 1.0f, &rng);
  Tensor c;
  for (auto _ : state) {
    MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_MatMul)
    ->Args({128, 134, 64})
    ->Args({384, 134, 64})
    ->Args({128, 64, 64})
    ->Args({512, 192, 64})
    // Paper-scale MSCN shapes (d=256): hidden layers and the wide
    // bitmaps-variant input layer, at serving batch sizes >= 64.
    ->Args({64, 256, 256})
    ->Args({256, 256, 256})
    ->Args({256, 1068, 256});

// Shared fixture: a small database, workload and featurized batch.
struct MscnFixture {
  Database db;
  Executor executor;
  SampleSet samples;
  Workload workload;
  Featurizer featurizer;

  static ImdbConfig Config() {
    ImdbConfig config;
    config.seed = 77;
    config.num_titles = 3000;
    config.num_companies = 500;
    config.num_persons = 2000;
    config.num_keywords = 600;
    return config;
  }

  MscnFixture()
      : db(GenerateImdb(Config())),
        executor(&db),
        samples(&db, 128, 3),
        workload([this] {
          GeneratorConfig generator_config;
          generator_config.seed = 5;
          QueryGenerator generator(&db, generator_config);
          return generator.GenerateLabeled(executor, samples, 256, "bench");
        }()),
        featurizer(&db, FeatureVariant::kBitmaps, 128) {}

  static MscnFixture& Get() {
    static MscnFixture* fixture = new MscnFixture();
    return *fixture;
  }
};

void BM_FeaturizeBatch(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const MscnBatch batch =
        fixture.featurizer.MakeBatch(fixture.workload, 0, batch_size, nullptr);
    benchmark::DoNotOptimize(batch.tables.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_FeaturizeBatch)->Arg(32)->Arg(128)->Arg(256);

void BM_MscnForward(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  MscnConfig config;
  config.hidden_units = 64;
  Rng rng(2);
  MscnModel model(fixture.featurizer.dims(), config, &rng);
  model.set_normalizer(TargetNormalizer(0.0, 15.0));
  const MscnBatch batch =
      fixture.featurizer.MakeBatch(fixture.workload, 0, batch_size, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_MscnForward)->Arg(1)->Arg(64)->Arg(256);

// Steady-state serving: EstimateAll through a reused tape workspace, the
// path the section 4.7 batched-latency numbers measure.
void BM_MscnEstimateAll(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  MscnConfig config;
  config.hidden_units = 64;
  Rng rng(6);
  MscnModel model(fixture.featurizer.dims(), config, &rng);
  model.set_normalizer(TargetNormalizer(0.0, 15.0));
  MscnEstimator estimator(&fixture.featurizer, &model);
  std::vector<const LabeledQuery*> queries;
  for (const LabeledQuery& query : fixture.workload.queries) {
    queries.push_back(&query);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateAll(queries, batch_size));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(
      nn::KernelBackendName(nn::ActiveKernelBackend()));
}
BENCHMARK(BM_MscnEstimateAll)->Arg(64)->Arg(256);

void BM_MscnTrainStep(benchmark::State& state) {
  MscnFixture& fixture = MscnFixture::Get();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  MscnConfig config;
  config.hidden_units = 64;
  Rng rng(3);
  MscnModel model(fixture.featurizer.dims(), config, &rng);
  const TargetNormalizer normalizer(0.0, 15.0);
  model.set_normalizer(normalizer);
  Adam adam(model.parameters());
  const MscnBatch batch = fixture.featurizer.MakeBatch(
      fixture.workload, 0, batch_size, &normalizer);
  for (auto _ : state) {
    Tape tape;
    const Tape::NodeId prediction = model.Forward(&tape, batch);
    const Tape::NodeId loss =
        tape.MeanQErrorLoss(prediction, batch.targets, 15.0f);
    adam.ZeroGrad();
    tape.Backward(loss);
    adam.Step();
    benchmark::DoNotOptimize(tape.value(loss)[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_MscnTrainStep)->Arg(64)->Arg(128)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(4);
  Parameter parameter(Tensor::Randn({256, 256}, 0.1f, &rng));
  parameter.grad = Tensor::Randn({256, 256}, 0.1f, &rng);
  Adam adam({&parameter});
  for (auto _ : state) {
    adam.Step();
    benchmark::DoNotOptimize(parameter.value.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_AdamStep);

}  // namespace
}  // namespace lc

BENCHMARK_MAIN();
