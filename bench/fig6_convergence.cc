// Figure 6 / section 4.7: convergence of the validation-set mean q-error
// with the number of training epochs.

#include <iostream>

#include "eval/experiment.h"
#include "util/str.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Figure 6: Convergence of the mean q-error on the "
               "validation set ===\n";
  experiment.PrintSetup(std::cout);

  lc::TrainingHistory history;
  experiment.Model(lc::FeatureVariant::kBitmaps, &history);

  std::cout << lc::Format("%8s %16s %22s %12s\n", "epoch", "train loss",
                          "validation mean q-err", "seconds");
  for (const lc::EpochStats& stats : history.epochs) {
    std::cout << lc::Format("%8d %16.3f %22.3f %12.2f\n", stats.epoch,
                            stats.train_loss, stats.validation_mean_qerror,
                            stats.seconds);
  }
  std::cout << lc::Format("total training time: %s\n",
                          lc::HumanSeconds(history.total_seconds).c_str());

  std::cout << "\npaper (Figure 6): the validation mean q-error drops "
               "steeply in the first epochs and converges to ~3 within 75 "
               "epochs (100 epochs take ~39 minutes at paper scale on a "
               "GPU).\n"
            << "(expected shape: monotone-ish decay flattening out; the "
               "absolute floor depends on the scaled-down corpus)\n";
  return 0;
}
