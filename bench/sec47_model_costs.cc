// Section 4.7: model costs — training time, prediction latency (single
// query and batched), serialized model size, and the int8 quantized
// snapshot's footprint and batched latency, for the three MSCN feature
// variants.

#include <iostream>

#include "core/quantized_model.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/str.h"
#include "util/timer.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Section 4.7: Model costs ===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  const lc::FeatureVariant variants[] = {lc::FeatureVariant::kNoSamples,
                                         lc::FeatureVariant::kSampleCounts,
                                         lc::FeatureVariant::kBitmaps};

  std::cout << lc::Format("%-22s %14s %14s %16s %16s %16s %12s %14s\n",
                          "variant", "train time", "size on disk",
                          "latency (1 query)", "latency (warm $)",
                          "latency (batched)", "int8 size",
                          "int8 (batched)");
  for (lc::FeatureVariant variant : variants) {
    lc::TrainingHistory history;
    lc::MscnModel& model = experiment.Model(variant, &history);
    lc::MscnEstimator& estimator = experiment.Mscn(variant);

    // Single-query latency over a slice of the synthetic workload (cold:
    // every query misses the result cache).
    const size_t probes = std::min<size_t>(synthetic.size(), 256);
    lc::WallTimer single_timer;
    for (size_t i = 0; i < probes; ++i) {
      estimator.Estimate(synthetic.queries[i]);
    }
    const double single_latency = single_timer.Seconds() / probes;

    // Same probes again: with LC_EST_CACHE enabled these are all hits and
    // skip featurization + the forward pass entirely.
    lc::WallTimer warm_timer;
    for (size_t i = 0; i < probes; ++i) {
      estimator.Estimate(synthetic.queries[i]);
    }
    const double warm_latency = warm_timer.Seconds() / probes;

    // Batched latency (pool-partitioned, cache-free path).
    std::vector<const lc::LabeledQuery*> pointers;
    for (size_t i = 0; i < probes; ++i) {
      pointers.push_back(&synthetic.queries[i]);
    }
    lc::WallTimer batch_timer;
    estimator.EstimateAll(pointers, 256);
    const double batched_latency = batch_timer.Seconds() / probes;

    // The int8 snapshot: quantize once, then the same batched sweep
    // through the quantized forward.
    const auto quantized = lc::QuantizedMscnModel::FromModel(model);
    const lc::MscnBatch batch =
        experiment.FeaturizerFor(variant).MakeBatch(pointers, nullptr);
    std::vector<double> quant_estimates;
    lc::WallTimer quant_timer;
    quantized->Predict(batch, &quant_estimates);
    const double quant_latency = quant_timer.Seconds() / probes;

    std::cout << lc::Format(
        "%-22s %14s %14s %16s %16s %16s %12s %14s\n",
        lc::Format("MSCN (%s)", lc::FeatureVariantName(variant)).c_str(),
        lc::HumanSeconds(history.total_seconds).c_str(),
        lc::HumanBytes(model.ToBytes().size()).c_str(),
        lc::HumanSeconds(single_latency).c_str(),
        lc::HumanSeconds(warm_latency).c_str(),
        lc::HumanSeconds(batched_latency).c_str(),
        lc::HumanBytes(quantized->ByteSize()).c_str(),
        lc::HumanSeconds(quant_latency).c_str());
    lc::PrintCacheCounters(std::cout, estimator.name(),
                           estimator.cache_counters());
  }

  std::cout << "\npaper (section 4.7): serialized sizes 1.6 MiB / 1.6 MiB / "
               "2.6 MiB for no-samples / #samples / bitmaps at d=256 with "
               "1000-bit bitmaps; ~39 min training (100 epochs, 90k "
               "queries, GPU); prediction in the order of a few ms per "
               "query including framework overhead.\n"
            << "(expected shape: bitmaps variant largest; prediction "
               "latency far below execution cost and independent of "
               "training-set size)\n";
  return 0;
}
