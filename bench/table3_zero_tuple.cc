// Table 3: 0-tuple situations (paper section 4.2) — base-table queries of
// the synthetic workload whose materialized sample qualifies zero tuples.
// Compares PostgreSQL, Random Sampling and MSCN on exactly this subset.

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "util/str.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Table 3: Base-table queries with empty samples (0-tuple "
               "situations) ===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& synthetic = experiment.SyntheticWorkload();

  // Base-table queries (0 joins) whose bitmap is all zeros.
  std::vector<size_t> zero_tuple;
  size_t base_table_queries = 0;
  for (size_t i = 0; i < synthetic.size(); ++i) {
    const lc::LabeledQuery& labeled = synthetic.queries[i];
    if (labeled.query.num_joins() != 0) continue;
    ++base_table_queries;
    if (labeled.sample_counts.size() == 1 && labeled.sample_counts[0] == 0) {
      zero_tuple.push_back(i);
    }
  }
  std::cout << lc::Format(
      "%zu of %zu base-table queries (%.0f%%) have empty samples\n",
      zero_tuple.size(), base_table_queries,
      100.0 * static_cast<double>(zero_tuple.size()) /
          static_cast<double>(base_table_queries == 0 ? 1
                                                      : base_table_queries));
  std::cout << "(paper: 376 of 1636 base table queries = 22%)\n\n";

  if (zero_tuple.empty()) {
    std::cout << "no 0-tuple queries at this scale; increase "
                 "LC_SYNTHETIC_QUERIES or lower LC_SAMPLE_SIZE\n";
    return 0;
  }

  std::vector<lc::NamedSummary> rows;
  for (lc::CardinalityEstimator* estimator :
       {static_cast<lc::CardinalityEstimator*>(&experiment.Postgres()),
        static_cast<lc::CardinalityEstimator*>(&experiment.RandomSampling()),
        static_cast<lc::CardinalityEstimator*>(&experiment.Mscn())}) {
    const std::vector<double> estimates =
        lc::EstimateWorkload(estimator, synthetic);
    rows.push_back({estimator->name(),
                    lc::Summarize(lc::QErrors(estimates, synthetic,
                                              zero_tuple))});
  }
  lc::PrintErrorTable(std::cout, "", rows);

  std::cout << "\npaper (Table 3):\n"
            << "                     median       90th       95th       99th"
               "        max       mean\n"
            << "  PostgreSQL           4.78       62.8        107       1141"
               "      21522        133\n"
            << "  Random Samp.         9.13       80.1        173        993"
               "      19009        147\n"
            << "  MSCN                 2.94       13.6       28.4       56.9"
               "        119       6.89\n"
            << "(expected shape: MSCN far more robust than both when "
               "runtime sampling carries no signal)\n";
  return 0;
}
