// Table 1: distribution of joins across the three evaluation workloads
// (synthetic, scale, JOB-light), plus the training corpus for reference.

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Table 1: Distribution of joins ===\n";
  experiment.PrintSetup(std::cout);

  experiment.PrefetchWorkloads();  // Builds the four workloads concurrently.
  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  const lc::Workload& scale = experiment.ScaleWorkload();
  const lc::Workload& job_light = experiment.JobLightWorkload();
  const lc::Workload& training = experiment.TrainingWorkload();

  lc::PrintJoinDistribution(
      std::cout, {&synthetic, &scale, &job_light, &training}, 4);

  std::cout << "\npaper (Table 1):\n"
            << "  synthetic   1636 1407 1957    0    0  5000\n"
            << "  scale        100  100  100  100  100   500\n"
            << "  JOB-light      0    3   32   23   12    70\n"
            << "(the synthetic workload's non-uniformity stems from "
               "duplicate elimination, as in the paper)\n";
  return 0;
}
