// Table 4 / section 4.5: estimation errors on the JOB-light analogue — a
// workload *not* produced by the training query generator.

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "util/str.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Table 4: Estimation errors on the JOB-light workload "
               "===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& job_light = experiment.JobLightWorkload();
  std::vector<lc::NamedSummary> rows;
  for (lc::CardinalityEstimator* estimator :
       {static_cast<lc::CardinalityEstimator*>(&experiment.Postgres()),
        static_cast<lc::CardinalityEstimator*>(&experiment.RandomSampling()),
        static_cast<lc::CardinalityEstimator*>(&experiment.Ibjs()),
        static_cast<lc::CardinalityEstimator*>(&experiment.Mscn())}) {
    const std::vector<double> estimates =
        lc::EstimateWorkload(estimator, job_light);
    rows.push_back({estimator->name(),
                    lc::Summarize(lc::QErrors(estimates, job_light))});
  }
  lc::PrintErrorTable(std::cout, "", rows);

  // The paper also reports MSCN's 95th percentile excluding the queries
  // whose cardinality exceeds the training maximum.
  const int64_t max_trained = experiment.TrainingWorkload().MaxCardinality();
  std::vector<size_t> in_range;
  for (size_t i = 0; i < job_light.size(); ++i) {
    if (job_light.queries[i].cardinality <= max_trained) {
      in_range.push_back(i);
    }
  }
  const std::vector<double> mscn_estimates =
      lc::EstimateWorkload(&experiment.Mscn(), job_light);
  std::cout << lc::Format(
      "\n%zu of %zu JOB-light queries exceed the training maximum "
      "cardinality (paper: 5); MSCN 95th percentile on in-range queries: "
      "%s\n",
      job_light.size() - in_range.size(), job_light.size(),
      lc::HumanNumber(
          lc::Quantile(lc::QErrors(mscn_estimates, job_light, in_range),
                       0.95))
          .c_str());

  std::cout << "\npaper (Table 4):\n"
            << "                     median       90th       95th       99th"
               "        max       mean\n"
            << "  PostgreSQL           7.93        164       1104       2912"
               "       3477        174\n"
            << "  Random Samp.         11.5        198       4073      22748"
               "      23992       1046\n"
            << "  IB Join Samp.        1.59        150       3198      14309"
               "      15775        590\n"
            << "  MSCN                 3.82       78.4        362        927"
               "       1110       57.9\n"
            << "(expected shape: IBJS best median; MSCN best tail and "
               "mean; all estimators worse than on the synthetic "
               "workload)\n";
  return 0;
}
