// Section 4.6: hyperparameter tuning — a grid over epochs, batch size and
// hidden units, reporting the validation mean q-error per configuration and
// the spread between the best and worst configurations. (The paper sweeps
// 72 configurations x 3 repetitions at full scale; this reduced grid covers
// the same axes, scaled for a single core. Raise LC_GRID_* to widen it.)

#include <algorithm>
#include <iostream>

#include "core/trainer.h"
#include "eval/experiment.h"
#include "util/env.h"
#include "util/str.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Section 4.6: Hyperparameter tuning ===\n";
  experiment.PrintSetup(std::cout);

  const lc::MscnConfig base = experiment.config().mscn;
  std::vector<int> epoch_grid = {std::max(4, base.epochs / 2), base.epochs};
  std::vector<int> batch_grid = {64, 128, 256};
  std::vector<int> hidden_grid = {base.hidden_units / 2, base.hidden_units};
  if (lc::GetEnvBool("LC_GRID_WIDE", false)) {
    batch_grid = {64, 128, 256, 512, 1024};
    hidden_grid = {base.hidden_units / 2, base.hidden_units,
                   base.hidden_units * 2};
  }

  struct Result {
    lc::MscnConfig config;
    double validation_mean_qerror = 0.0;
    double seconds = 0.0;
  };
  std::vector<Result> results;

  std::cout << lc::Format("%8s %8s %8s %24s %10s\n", "epochs", "batch",
                          "hidden", "validation mean q-err", "time");
  for (int epochs : epoch_grid) {
    for (int batch : batch_grid) {
      for (int hidden : hidden_grid) {
        lc::MscnConfig config = base;
        config.epochs = epochs;
        config.batch_size = batch;
        config.hidden_units = hidden;
        lc::TrainingHistory history;
        experiment.TrainWithConfig(config, &history);
        Result result;
        result.config = config;
        result.validation_mean_qerror =
            history.epochs.back().validation_mean_qerror;
        result.seconds = history.total_seconds;
        results.push_back(result);
        std::cout << lc::Format(
            "%8d %8d %8d %24.3f %10s\n", epochs, batch, hidden,
            result.validation_mean_qerror,
            lc::HumanSeconds(result.seconds).c_str());
      }
    }
  }

  std::sort(results.begin(), results.end(),
            [](const Result& a, const Result& b) {
              return a.validation_mean_qerror < b.validation_mean_qerror;
            });
  const Result& best = results.front();
  const Result& worst = results.back();
  std::cout << lc::Format(
      "\nbest configuration: epochs=%d batch=%d hidden=%d (mean q-error "
      "%.3f)\n",
      best.config.epochs, best.config.batch_size, best.config.hidden_units,
      best.validation_mean_qerror);
  std::cout << lc::Format(
      "best-to-worst spread: %.1f%% (paper: mean q-error varied by 21%% "
      "between best and worst of 72 configurations, 1%% within the top "
      "10)\n",
      100.0 * (worst.validation_mean_qerror / best.validation_mean_qerror -
               1.0));
  std::cout << "(paper's chosen default: 100 epochs, batch 1024, 256 hidden "
               "units, learning rate 0.001)\n";
  return 0;
}
