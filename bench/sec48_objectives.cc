// Section 4.8: optimization metrics — training MSCN under mean q-error,
// geometric mean q-error and mean squared error, evaluating all three on
// the synthetic workload.

#include <iostream>

#include "core/mscn_estimator.h"
#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Section 4.8: Optimization metrics (training "
               "objectives) ===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  const lc::Featurizer& featurizer =
      experiment.FeaturizerFor(lc::FeatureVariant::kBitmaps);

  std::vector<lc::NamedSummary> rows;
  for (lc::LossKind loss : {lc::LossKind::kMeanQError, lc::LossKind::kGeoQError,
                            lc::LossKind::kMse}) {
    lc::MscnConfig config = experiment.config().mscn;
    config.variant = lc::FeatureVariant::kBitmaps;
    config.loss = loss;
    lc::MscnModel model = experiment.TrainWithConfig(config);
    lc::MscnEstimator estimator(&featurizer, &model,
                                lc::LossKindName(loss));
    const std::vector<double> estimates =
        lc::EstimateWorkload(&estimator, synthetic);
    rows.push_back({lc::LossKindName(loss),
                    lc::Summarize(lc::QErrors(estimates, synthetic))});
  }
  lc::PrintErrorTable(
      std::cout, "q-errors on the synthetic workload, by training objective",
      rows);

  std::cout << "\npaper (section 4.8): optimizing the mean q-error directly "
               "beats mean squared error (which optimizes absolute "
               "differences) and is more reliable than the geometric mean "
               "q-error (which underweights heavy outliers).\n";
  return 0;
}
