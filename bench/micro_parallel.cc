// Microbenchmarks of the concurrency substrate (util/parallel.h,
// util/lru_cache.h): parallel-for dispatch overhead and scaling on a
// CPU-bound body, bounded-queue handoff throughput, and sharded-LRU
// lookup cost under contention. Worker counts are explicit per benchmark
// (the global pool and LC_THREADS are not consulted) so runs are
// comparable across machines.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "util/lru_cache.h"
#include "util/parallel.h"

namespace {

// A few hundred nanoseconds of register-only work per item.
uint64_t BusyMix(uint64_t seed, int rounds) {
  uint64_t x = seed | 1;
  for (int i = 0; i < rounds; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x *= 0x2545f4914f6cdd1dULL;
  }
  return x;
}

// Dispatch overhead: tiny body, so the fork/join machinery dominates.
void BM_ParallelForDispatch(benchmark::State& state) {
  lc::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<uint64_t> out(4096);
  for (auto _ : state) {
    lc::ParallelFor(&pool, 0, out.size(), 256,
                    [&](size_t i) { out[i] = i; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForDispatch)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

// CPU-bound scaling: the body costs ~1µs per item, so perfect scaling
// divides wall time by the lane count (workers + caller).
void BM_ParallelForCpuBound(benchmark::State& state) {
  lc::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<uint64_t> out(8192);
  for (auto _ : state) {
    lc::ParallelForShards(&pool, 0, out.size(), 0,
                          [&](size_t, size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i) {
                              out[i] = BusyMix(i, 200);
                            }
                          });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForCpuBound)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

// Producer/consumer handoff cost through the trainer's pipeline queue.
void BM_BoundedQueueHandoff(benchmark::State& state) {
  constexpr int kItems = 10000;
  for (auto _ : state) {
    lc::BoundedQueue<int> queue(4);
    std::thread producer([&queue] {
      for (int i = 0; i < kItems; ++i) queue.Push(i);
      queue.Close();
    });
    int64_t sum = 0;
    int value = 0;
    while (queue.Pop(&value)) sum += value;
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_BoundedQueueHandoff);

// Estimator-cache shaped load: mostly hits on a hot key set.
void BM_ShardedLruCacheLookup(benchmark::State& state) {
  lc::ShardedLruCache<uint64_t, double> cache(4096);
  for (uint64_t key = 0; key < 2048; ++key) {
    cache.Insert(key, static_cast<double>(key));
  }
  lc::ThreadPool pool(static_cast<int>(state.range(0)));
  constexpr size_t kLookups = 1 << 16;
  for (auto _ : state) {
    lc::ParallelFor(&pool, 0, kLookups, 1024, [&](size_t i) {
      double value = 0.0;
      cache.Lookup(BusyMix(i, 1) % 4096, &value);
      benchmark::DoNotOptimize(value);
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kLookups));
}
BENCHMARK(BM_ShardedLruCacheLookup)->Arg(0)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
