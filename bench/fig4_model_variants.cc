// Figure 4 / section 4.3: ablation of the sample-derived features — MSCN
// without sampling features, with per-table qualifying counts, and with full
// bitmaps. Also prints the 95th-percentile improvement factors the paper
// quotes.

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "util/str.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Figure 4: Removing model features (MSCN variants) ===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  const lc::FeatureVariant variants[] = {lc::FeatureVariant::kNoSamples,
                                         lc::FeatureVariant::kSampleCounts,
                                         lc::FeatureVariant::kBitmaps};

  std::vector<lc::NamedBoxSeries> series;
  // estimates[variant] for the improvement-factor table below.
  std::vector<std::vector<double>> estimates_per_variant;
  for (lc::FeatureVariant variant : variants) {
    lc::MscnEstimator& estimator = experiment.Mscn(variant);
    std::vector<double> estimates =
        lc::EstimateWorkload(&estimator, synthetic);
    series.push_back(lc::BoxSeriesByJoins(
        lc::Format("MSCN (%s)", lc::FeatureVariantName(variant)), estimates,
        synthetic, 2));
    estimates_per_variant.push_back(std::move(estimates));
  }
  lc::PrintBoxplotFigure(std::cout, "", series);

  // Overall 95th percentile of the no-samples variant (paper: 25.3).
  const double overall_p95 = lc::Quantile(
      lc::QErrors(estimates_per_variant[0], synthetic), 0.95);
  std::cout << lc::Format(
      "\nMSCN (no samples) overall 95th percentile q-error: %.1f "
      "(paper: 25.3)\n\n",
      overall_p95);

  // 95th-percentile improvement factors per join count.
  std::cout << "95th-percentile q-error improvement factors per join "
               "count:\n";
  std::cout << lc::Format("%-28s %10s %10s %10s\n", "", "0 joins", "1 join",
                          "2 joins");
  const char* transitions[] = {"no samples -> #samples",
                               "#samples -> bitmaps"};
  for (int step = 0; step < 2; ++step) {
    std::string row = lc::Format("%-28s", transitions[step]);
    for (int joins = 0; joins <= 2; ++joins) {
      const std::vector<size_t> subset = synthetic.QueriesWithJoins(joins);
      const double before = lc::Quantile(
          lc::QErrors(estimates_per_variant[static_cast<size_t>(step)],
                      synthetic, subset),
          0.95);
      const double after = lc::Quantile(
          lc::QErrors(estimates_per_variant[static_cast<size_t>(step) + 1],
                      synthetic, subset),
          0.95);
      row += lc::Format(" %9.2fx", before / after);
    }
    std::cout << row << "\n";
  }
  std::cout << "(paper: #samples improves 0/1/2-join 95th percentiles by "
               "1.72x/3.60x/3.61x; bitmaps add 1.47x/1.35x/1.04x)\n";
  return 0;
}
