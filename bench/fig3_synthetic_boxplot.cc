// Figure 3: signed q-error box plots per join count on the synthetic
// workload for PostgreSQL, Random Sampling, IBJS and MSCN.

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Figure 3: Estimation errors on the synthetic workload "
               "(box plots per join count) ===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  std::vector<lc::NamedBoxSeries> series;
  for (lc::CardinalityEstimator* estimator :
       {static_cast<lc::CardinalityEstimator*>(&experiment.Postgres()),
        static_cast<lc::CardinalityEstimator*>(&experiment.RandomSampling()),
        static_cast<lc::CardinalityEstimator*>(&experiment.Ibjs()),
        static_cast<lc::CardinalityEstimator*>(&experiment.Mscn())}) {
    series.push_back(lc::BoxSeriesByJoins(
        estimator->name(), lc::EstimateWorkload(estimator, synthetic),
        synthetic, 2));
  }
  lc::PrintBoxplotFigure(std::cout, "", series);

  std::cout << "\npaper (Figure 3) expected shape:\n"
            << "  - PostgreSQL errors grow with join count, skewed to "
               "overestimation at the whisker;\n"
            << "  - Random Sampling underestimates joins (negative medians/"
               "whiskers growing with joins);\n"
            << "  - IBJS is near-perfect in the median but its 95th "
               "percentile explodes (empty samples);\n"
            << "  - MSCN stays in a narrow band around 1 across 0-2 "
               "joins.\n";
  return 0;
}
