// Table 2: percentile q-errors of all four estimators on the synthetic
// workload (paper section 4.1).

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Table 2: Estimation errors on the synthetic workload "
               "===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& synthetic = experiment.SyntheticWorkload();
  std::vector<lc::NamedSummary> rows;
  for (lc::CardinalityEstimator* estimator :
       {static_cast<lc::CardinalityEstimator*>(&experiment.Postgres()),
        static_cast<lc::CardinalityEstimator*>(&experiment.RandomSampling()),
        static_cast<lc::CardinalityEstimator*>(&experiment.Ibjs()),
        static_cast<lc::CardinalityEstimator*>(&experiment.Mscn())}) {
    const std::vector<double> estimates =
        lc::EstimateWorkload(estimator, synthetic);
    rows.push_back(
        {estimator->name(), lc::Summarize(lc::QErrors(estimates, synthetic))});
  }
  lc::PrintErrorTable(std::cout, "", rows);

  std::cout << "\npaper (Table 2):\n"
            << "                     median       90th       95th       99th"
               "        max       mean\n"
            << "  PostgreSQL           1.69       9.57       23.9        465"
               "     373901        154\n"
            << "  Random Samp.         1.89       19.2       53.4        587"
               "     272501        125\n"
            << "  IB Join Samp.        1.09       9.93       33.2        295"
               "     272514        118\n"
            << "  MSCN (ours)          1.18       3.32       6.84      30.51"
               "       1322       2.89\n"
            << "(expected shape: IBJS best median; MSCN 1-2 orders of "
               "magnitude better at the 95th+ percentiles and in the mean)\n";
  return 0;
}
