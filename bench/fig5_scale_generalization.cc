// Figure 5 / section 4.4: generalization to more joins than trained on.
// MSCN is trained on 0-2 joins; the scale workload evaluates 0-4 joins.
// Also reports the 95th percentiles with and without the queries whose true
// cardinality exceeds the training maximum (the paper's outlier analysis).

#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "util/str.h"

int main() {
  lc::Experiment experiment;
  std::cout << "=== Figure 5: Generalizing to queries with more joins "
               "(scale workload) ===\n";
  experiment.PrintSetup(std::cout);

  const lc::Workload& scale = experiment.ScaleWorkload();
  const lc::Workload& training = experiment.TrainingWorkload();

  std::vector<lc::NamedBoxSeries> series;
  std::vector<double> pg_estimates =
      lc::EstimateWorkload(&experiment.Postgres(), scale);
  std::vector<double> mscn_estimates =
      lc::EstimateWorkload(&experiment.Mscn(), scale);
  series.push_back(
      lc::BoxSeriesByJoins("PostgreSQL", pg_estimates, scale, 4));
  series.push_back(lc::BoxSeriesByJoins("MSCN", mscn_estimates, scale, 4));
  lc::PrintBoxplotFigure(std::cout, "", series);

  // 95th percentile per join count, and the out-of-range split.
  const int64_t max_trained = training.MaxCardinality();
  size_t out_of_range = 0;
  for (const lc::LabeledQuery& labeled : scale.queries) {
    if (labeled.cardinality > max_trained) ++out_of_range;
  }
  std::cout << lc::Format(
      "\n%zu of %zu scale queries exceed the maximum cardinality seen "
      "during training (paper: 58 of 500)\n\n",
      out_of_range, scale.size());

  std::cout << lc::Format("%-26s %10s %10s %10s %10s %10s\n",
                          "95th pct q-error", "0 joins", "1 join", "2 joins",
                          "3 joins", "4 joins");
  const auto p95_row = [&](const char* name,
                           const std::vector<double>& estimates,
                           bool exclude_out_of_range) {
    std::string row = lc::Format("%-26s", name);
    for (int joins = 0; joins <= 4; ++joins) {
      std::vector<size_t> subset;
      for (size_t index : scale.QueriesWithJoins(joins)) {
        if (exclude_out_of_range &&
            scale.queries[index].cardinality > max_trained) {
          continue;
        }
        subset.push_back(index);
      }
      if (subset.empty()) {
        row += lc::Format(" %10s", "-");
        continue;
      }
      row += lc::Format(
          " %10s",
          lc::HumanNumber(
              lc::Quantile(lc::QErrors(estimates, scale, subset), 0.95))
              .c_str());
    }
    std::cout << row << "\n";
  };
  p95_row("PostgreSQL", pg_estimates, false);
  p95_row("MSCN", mscn_estimates, false);
  p95_row("MSCN (in-range only)", mscn_estimates, true);

  std::cout << "\npaper (section 4.4): MSCN 95th percentile grows 7.66 -> "
               "38.6 -> 2397 for 2 -> 3 -> 4 joins (PostgreSQL: 78.0 at 3 "
               "joins, 4077 at 4); excluding out-of-range queries, MSCN's "
               "3/4-join 95th percentiles drop to 23.8/175.\n"
            << "(expected shape: MSCN degrades gracefully at 3 joins, "
               "sharply at 4; most of the 4-join tail is out-of-range "
               "cardinalities)\n";
  return 0;
}
